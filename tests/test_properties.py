"""Property-based tests (hypothesis) for core invariants."""


from hypothesis import given, settings, strategies as st

from repro.core import PunchEncodingAnalysis, PunchFabric
from repro.noc import Direction, MeshTopology, XYRouting

TOPO = MeshTopology(8, 8)
ROUTING = XYRouting(TOPO)
ANALYSIS = PunchEncodingAnalysis(TOPO, hops=3)

nodes = st.integers(min_value=0, max_value=TOPO.num_nodes - 1)


class TestRoutingProperties:
    @given(src=nodes, dst=nodes)
    def test_path_length_is_manhattan_distance(self, src, dst):
        path = ROUTING.path(src, dst)
        assert len(path) - 1 == TOPO.hop_distance(src, dst)

    @given(src=nodes, dst=nodes)
    def test_path_nodes_unique(self, src, dst):
        path = ROUTING.path(src, dst)
        assert len(set(path)) == len(path)

    @given(src=nodes, dst=nodes)
    def test_path_x_moves_precede_y_moves(self, src, dst):
        path = ROUTING.path(src, dst)
        seen_y = False
        for a, b in zip(path, path[1:]):
            direction = TOPO.direction_to_neighbor(a, b)
            if direction.is_y:
                seen_y = True
            else:
                assert not seen_y, "X move after a Y move violates XY routing"

    @given(src=nodes, dst=nodes, hops=st.integers(min_value=0, max_value=6))
    def test_router_ahead_is_on_path(self, src, dst, hops):
        target = ROUTING.router_ahead(src, dst, hops)
        assert target in ROUTING.path(src, dst)

    @given(src=nodes, dst=nodes)
    def test_next_hop_reduces_distance(self, src, dst):
        if src == dst:
            return
        nxt = ROUTING.next_hop(src, dst)
        assert TOPO.hop_distance(nxt, dst) == TOPO.hop_distance(src, dst) - 1


class TestCanonicalizationProperties:
    targets = st.sets(nodes, min_size=1, max_size=5)

    @given(targets=targets, link_dst=nodes)
    def test_canonical_is_subset(self, targets, link_dst):
        canon = ANALYSIS.canonicalize(frozenset(targets), link_dst)
        assert canon <= targets

    @given(targets=targets, link_dst=nodes)
    def test_canonical_is_idempotent(self, targets, link_dst):
        canon = ANALYSIS.canonicalize(frozenset(targets), link_dst)
        assert ANALYSIS.canonicalize(canon, link_dst) == canon

    @given(targets=targets, link_dst=nodes)
    def test_canonical_covers_all_targets(self, targets, link_dst):
        """Every dropped target lies on the relay path of a kept one —
        waking the kept targets implicitly wakes everything dropped."""
        canon = ANALYSIS.canonicalize(frozenset(targets), link_dst)
        covered = set()
        for kept in canon:
            covered.update(ROUTING.path(link_dst, kept))
        assert targets <= covered | canon

    @given(targets=targets, link_dst=nodes)
    def test_canonical_nonempty(self, targets, link_dst):
        assert ANALYSIS.canonicalize(frozenset(targets), link_dst)


class TestPunchFabricProperties:
    @given(origin=nodes, target_set=st.sets(nodes, min_size=1, max_size=4))
    @settings(max_examples=50)
    def test_every_target_is_eventually_woken(self, origin, target_set):
        woken = []
        fabric = PunchFabric(ROUTING, lambda r, c: woken.append(r))
        fabric.send_local(origin, target_set, cycle=0)
        for cycle in range(1, 20):
            fabric.deliver(cycle)
        assert set(target_set) <= set(woken)

    @given(origin=nodes, target=nodes)
    @settings(max_examples=50)
    def test_delivery_time_equals_hop_distance(self, origin, target):
        events = []
        fabric = PunchFabric(ROUTING, lambda r, c: events.append((r, c)))
        fabric.send_local(origin, {target}, cycle=0)
        for cycle in range(1, 20):
            fabric.deliver(cycle)
        arrival = max(c for r, c in events if r == target)
        assert arrival == TOPO.hop_distance(origin, target)

    @given(origin=nodes, target=nodes)
    @settings(max_examples=50)
    def test_punch_touches_exactly_the_xy_path(self, origin, target):
        touched = []
        fabric = PunchFabric(ROUTING, lambda r, c: touched.append(r))
        fabric.send_local(origin, {target}, cycle=0)
        for cycle in range(1, 20):
            fabric.deliver(cycle)
        assert touched == ROUTING.path(origin, target)


class TestEncodingWidthProperties:
    @given(router=st.sampled_from([9, 18, 27, 36, 45]))
    @settings(max_examples=5, deadline=None)
    def test_interior_x_links_need_at_most_5_bits(self, router):
        enc = ANALYSIS.analyze_link(router, Direction.XPOS)
        assert enc.width_bits <= 5

    @given(router=st.sampled_from([9, 18, 27, 36, 45]))
    @settings(max_examples=5, deadline=None)
    def test_interior_y_links_need_at_most_2_bits(self, router):
        enc = ANALYSIS.analyze_link(router, Direction.YPOS)
        assert enc.width_bits <= 2
