"""Golden regression tests.

Pin exact numeric outputs of small deterministic runs so that
unintended behavioural changes to the simulator, schemes or protocol
show up immediately.  If a change is *intended* (e.g. a deliberate
timing-model fix), update the goldens here and explain why in the
commit.
"""

import pytest

from repro.core import ConvOptPG, NoPG, PowerPunchPG
from repro.noc import Network, NoCConfig, VirtualNetwork, control_packet
from repro.system import Chip, get_profile
from repro.traffic import SyntheticTraffic, measure

#: Every golden below must hold under all three per-cycle kernels —
#: the numbers pin the simulated behaviour, not the implementation.
KERNELS = ["active", "naive", "vector"]


@pytest.fixture(params=KERNELS)
def kernel(request):
    return request.param


class TestLatencyGoldens:
    @pytest.mark.parametrize(
        "stages,src,dst,expected",
        [
            (3, 0, 7, 31),
            (3, 0, 63, 59),
            (4, 0, 7, 39),
            (4, 27, 28, 9),
            (3, 2, 2, 3),  # self-addressed: inject + eject through local port
        ],
    )
    def test_zero_load_single_flit(self, stages, src, dst, expected, kernel):
        net = Network(NoCConfig(router_stages=stages, kernel=kernel))
        p = control_packet(src, dst, VirtualNetwork.REQUEST, 0)
        net.inject(p)
        net.run_until_drained(2000)
        assert p.network_latency == expected

    def test_cold_start_convopt_golden(self, kernel):
        scheme = ConvOptPG(wakeup_latency=8)
        net = Network(NoCConfig(kernel=kernel), scheme)
        for _ in range(30):
            net.step()
        p = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(2000)
        assert (p.total_latency, p.wakeup_wait_cycles, len(p.blocked_routers)) == (
            76, 42, 8
        )

    def test_cold_start_powerpunch_golden(self, kernel):
        scheme = PowerPunchPG(wakeup_latency=8)
        net = Network(NoCConfig(kernel=kernel), scheme)
        for _ in range(30):
            net.step()
        p = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(2000)
        assert (p.total_latency, p.wakeup_wait_cycles, len(p.blocked_routers)) == (
            38, 4, 1
        )


class TestTrafficGoldens:
    # topology="mesh" is spelled out (although it is the default) so
    # these goldens keep pinning the paper's Mesh2D fabric even if the
    # default ever changes — the 653 below is a mesh number.
    def test_uniform_random_nopg_golden(self, kernel):
        net = Network(NoCConfig(kernel=kernel, topology="mesh"))
        traffic = SyntheticTraffic(net, "uniform_random", 0.01, seed=7)
        measure(net, traffic, warmup=500, measurement=2000)
        s = net.stats
        assert s.delivered == 516
        assert s.total_network_latency == 14085
        assert s.router_traversals == 9588

    def test_uniform_random_powerpunch_golden(self, kernel):
        scheme = PowerPunchPG()
        net = Network(NoCConfig(kernel=kernel, topology="mesh"), scheme)
        traffic = SyntheticTraffic(net, "uniform_random", 0.01, seed=7)
        measure(net, traffic, warmup=500, measurement=2000)
        s = net.stats
        assert s.delivered == 515
        # 654 before the controller's cancel-on-same-cycle-wakeup fix: a
        # sleep decision revoked in its own cycle no longer counts as a
        # powered-off encounter (the supply was never actually cut).
        assert s.total_blocked_routers == 653
        assert scheme.total_wake_events() > 0


class TestChipGoldens:
    def test_bodytrack_nopg_golden(self):
        chip = Chip(
            NoCConfig(width=4, height=4),
            NoPG(),
            get_profile("bodytrack"),
            instructions_per_core=500,
            seed=1,
            benchmark="bodytrack",
        )
        result = chip.run(max_cycles=500_000)
        assert result.execution_time == chip.network.cycle
        assert result.packets == chip.network.stats.delivered
        # Golden values for this exact configuration and seed.
        assert result.execution_time == pytest.approx(chip.execution_time)
        golden = (result.execution_time, result.packets)
        chip2 = Chip(
            NoCConfig(width=4, height=4),
            NoPG(),
            get_profile("bodytrack"),
            instructions_per_core=500,
            seed=1,
            benchmark="bodytrack",
        )
        result2 = chip2.run(max_cycles=500_000)
        assert (result2.execution_time, result2.packets) == golden
