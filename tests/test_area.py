"""Tests for the punch-hardware area model (Sec. 6.6(1))."""

import pytest

from repro.noc import MeshTopology
from repro.power import RouterAreaBudget, estimate_punch_area


class TestAreaEstimate:
    def test_3hop_overhead_in_paper_range(self):
        # Paper: ~2.4% extra NoC area over conventional power-gating.
        est = estimate_punch_area(MeshTopology(8, 8), hops=3)
        assert 0.01 < est.total_overhead < 0.04

    def test_uses_worst_case_widths(self):
        est = estimate_punch_area(MeshTopology(8, 8), hops=3)
        assert est.widths == {"x_bits": 5, "y_bits": 2}

    def test_4hop_costs_more_than_3hop(self):
        topo = MeshTopology(8, 8)
        est3 = estimate_punch_area(topo, hops=3)
        est4 = estimate_punch_area(topo, hops=4)
        assert est4.total_overhead > est3.total_overhead

    def test_2hop_costs_less(self):
        topo = MeshTopology(8, 8)
        est2 = estimate_punch_area(topo, hops=2)
        est3 = estimate_punch_area(topo, hops=3)
        assert est2.total_overhead < est3.total_overhead

    def test_independent_of_mesh_size(self):
        # Sec. 6.6(2): punch widths depend on hop slack, not mesh size,
        # so the per-router overhead is flat.
        small = estimate_punch_area(MeshTopology(8, 8), hops=3)
        big = estimate_punch_area(MeshTopology(16, 16), hops=3)
        assert small.total_overhead == pytest.approx(big.total_overhead, rel=0.05)

    def test_components_positive(self):
        est = estimate_punch_area(MeshTopology(8, 8), hops=3)
        assert est.wiring_overhead > 0
        assert est.logic_overhead > 0
        assert est.total_overhead == pytest.approx(
            est.wiring_overhead + est.logic_overhead
        )

    def test_custom_budget(self):
        wide = RouterAreaBudget(link_width_bits=256)
        narrow = RouterAreaBudget(link_width_bits=64)
        topo = MeshTopology(8, 8)
        assert (
            estimate_punch_area(topo, budget=wide).wiring_overhead
            < estimate_punch_area(topo, budget=narrow).wiring_overhead
        )
