"""Chaos tests for the supervised campaign executor.

The acceptance scenarios of the resilience layer live here:

* a worker process is SIGKILLed mid-campaign — the supervisor detects
  the broken pool, salvages every completed cell, respawns, and the
  campaign finishes with payloads bit-identical to an undisturbed
  sequential run;
* the *orchestrator* is killed dead (``kill -9``, no cleanup) — a
  resumed campaign recovers the completed cells from the cache and
  finishes with 100% coverage and identical payload hashes;
* a deterministically failing cell lands in the quarantine ledger
  after exactly ``--max-retries`` attempts without blocking other
  cells, and later campaigns skip it outright;
* a cell that exceeds its wall-clock budget is killed, classified as
  a timeout, and does not stall the rest of the matrix.

Worker-kill tests rely on the ``fork`` start method: monkeypatched
``repro.campaign.engine.run_cell`` propagates into pool workers forked
after the patch.  That holds on Linux/CPython (the platforms CI runs).
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignError,
    CellCache,
    CellSpec,
    QuarantinedCellError,
    QuarantineLedger,
    encode_payload,
    execute_cells,
    iter_events,
)
from repro.noc.errors import SimulationError


def specs(n=4):
    """Cheap distinguishable cells (run_cell is monkeypatched away)."""
    return [
        CellSpec.parsec("canneal", "No-PG", instructions=100, seed=seed)
        for seed in range(1, n + 1)
    ]


def payload_hash(payload):
    doc = json.dumps(encode_payload(payload), sort_keys=True)
    return hashlib.sha256(doc.encode()).hexdigest()


def well_behaved(spec):
    return {"seed": spec.seed, "value": spec.seed * 10}


class TestWorkerKill:
    def test_sigkill_worker_is_isolated_and_campaign_completes(
        self, tmp_path, monkeypatch
    ):
        """SIGKILL one worker mid-cell: the supervisor must respawn the
        pool, re-run the victim, and deliver bit-identical payloads."""
        sentinel = tmp_path / "killed-once"

        def homicidal(spec):
            if spec.seed == 3 and not sentinel.exists():
                sentinel.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return well_behaved(spec)

        monkeypatch.setattr("repro.campaign.engine.run_cell", homicidal)
        cache = CellCache(tmp_path / "cache", salt="s1")
        log = tmp_path / "events.jsonl"
        payloads, stats = execute_cells(
            specs(), workers=2, cache=cache, log_path=log
        )

        assert sentinel.exists(), "the chaos cell never ran"
        assert stats.crashes >= 1
        assert stats.executed == 4 and stats.failed == 0
        # Bit-identical to an undisturbed sequential run.
        undisturbed, _ = execute_cells(specs())
        assert [payload_hash(p) for p in payloads] == [
            payload_hash(p) for p in undisturbed
        ]
        events = [json.loads(line) for line in log.read_text().splitlines()]
        assert any(e["event"] == "pool-respawn" for e in events)

    def test_repeated_worker_crashes_quarantine_the_culprit(
        self, tmp_path, monkeypatch
    ):
        """A cell that kills its worker every time is classified
        deterministic (crash twice in a row) and quarantined instead of
        crash-looping the pool forever."""

        def always_kills(spec):
            if spec.seed == 2:
                os.kill(os.getpid(), signal.SIGKILL)
            return well_behaved(spec)

        monkeypatch.setattr("repro.campaign.engine.run_cell", always_kills)
        ledger = QuarantineLedger(tmp_path / "q")
        cache = CellCache(tmp_path / "cache", salt="s1")
        payloads, stats = execute_cells(
            specs(3),
            workers=2,
            cache=cache,
            quarantine=ledger,
            max_retries=3,
            failure_mode="continue",
        )
        assert stats.crashes >= 2
        assert stats.quarantined == 1 and stats.failed == 1
        assert payloads[1] is None
        assert payloads[0] == well_behaved(specs(3)[0])
        assert payloads[2] == well_behaved(specs(3)[2])
        key = cache.key_for(specs(3)[1])
        assert ledger.is_quarantined(key)
        report = ledger.load_report(key)
        assert report["classification"] == "deterministic"
        assert report["signatures"][-2:] == ["worker-crash", "worker-crash"]


_ORCHESTRATOR_SCRIPT = """
import os, signal, sys
from repro.campaign import CellCache, execute_cells
from tests.test_chaos import orchestrator_cells

cells = orchestrator_cells()
cache = CellCache(sys.argv[1])
seen = []

def on_result(index, spec, payload, was_hit):
    seen.append(index)
    if len(seen) == 3:
        os.kill(os.getpid(), signal.SIGKILL)  # kill -9, no cleanup

execute_cells(cells, cache=cache, on_result=on_result)
"""


def orchestrator_cells():
    """Real (tiny) simulation cells for the orchestrator-kill test —
    the child process cannot see the parent's monkeypatches."""
    return [
        CellSpec.synthetic(
            "uniform_random",
            0.02,
            scheme,
            warmup=30,
            measurement=80,
            drain=False,
            seed=seed,
        )
        for scheme in ("No-PG", "PowerPunch-PG")
        for seed in (1, 2, 3)
    ]


class TestOrchestratorKill:
    def test_kill_dash_9_then_resume_bit_identical(self, tmp_path):
        """kill -9 the whole campaign after 3 completed cells; a
        resumed run must recover those 3 from the cache and finish with
        100% coverage and payload hashes identical to an undisturbed
        run."""
        cache_dir = tmp_path / "cache"
        env = dict(os.environ)
        repo = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo / "src"), str(repo), env.get("PYTHONPATH", "")]
        )
        proc = subprocess.run(
            [sys.executable, "-c", _ORCHESTRATOR_SCRIPT, str(cache_dir)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        cells = orchestrator_cells()
        cache = CellCache(cache_dir)
        resumed, stats = execute_cells(cells, cache=cache)
        assert stats.hits == 3, "completed cells were not salvaged"
        assert stats.executed == 3
        assert all(p is not None for p in resumed)

        undisturbed, _ = execute_cells(cells, cache=CellCache(tmp_path / "fresh"))
        assert [payload_hash(p) for p in resumed] == [
            payload_hash(p) for p in undisturbed
        ]


class TestQuarantine:
    def test_deterministic_failure_quarantined_after_max_retries(
        self, tmp_path, monkeypatch
    ):
        calls = []

        def mostly_fine(spec):
            calls.append(spec.seed)
            if spec.seed == 2:
                raise SimulationError("deterministic kaboom", cycle=5)
            return well_behaved(spec)

        monkeypatch.setattr("repro.campaign.engine.run_cell", mostly_fine)
        cache = CellCache(tmp_path / "cache", salt="s1")
        ledger = QuarantineLedger(tmp_path / "q")
        cells = specs(3)
        with pytest.raises(CampaignError) as excinfo:
            execute_cells(
                cells, cache=cache, quarantine=ledger, max_retries=2
            )
        # Exactly --max-retries attempts, then condemned.
        assert calls.count(2) == 2
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.cause, SimulationError)
        key = cache.key_for(cells[1])
        entry = ledger.entry_for(key)
        assert entry["classification"] == "deterministic"
        assert entry["attempts"] == 2
        # The failure did not block the other cells: both are cached.
        assert cache.get(cells[0]) is not None
        assert cache.get(cells[2]) is not None

    def test_second_campaign_skips_quarantined_cell(self, tmp_path, monkeypatch):
        calls = []

        def mostly_fine(spec):
            calls.append(spec.seed)
            if spec.seed == 2:
                raise SimulationError("deterministic kaboom", cycle=5)
            return well_behaved(spec)

        monkeypatch.setattr("repro.campaign.engine.run_cell", mostly_fine)
        cache = CellCache(tmp_path / "cache", salt="s1")
        ledger = QuarantineLedger(tmp_path / "q")
        cells = specs(3)
        with pytest.raises(CampaignError):
            execute_cells(cells, cache=cache, quarantine=ledger)
        first_run_calls = list(calls)

        payloads, stats = execute_cells(
            cells,
            cache=cache,
            quarantine=QuarantineLedger(tmp_path / "q"),  # reopened from disk
            failure_mode="continue",
        )
        # No new attempts at all: goods hit the cache, the bad cell is
        # skipped by the ledger without burning its retry budget.
        assert calls == first_run_calls
        assert stats.hits == 2 and stats.executed == 0
        assert stats.quarantined == 1
        assert payloads[1] is None

    def test_exhausted_flaky_cell_is_not_quarantined(self, tmp_path, monkeypatch):
        """A cell whose budget runs out on *differing* signatures is
        flaky, not condemned: its structured report is written for
        post-mortems, but no ledger line — the next campaign retries
        it with a fresh budget instead of skipping it forever."""
        calls = []

        def flaky(spec):
            calls.append(spec.seed)
            if spec.seed == 2:
                raise SimulationError(f"flaky kaboom #{len(calls)}", cycle=5)
            return well_behaved(spec)

        monkeypatch.setattr("repro.campaign.engine.run_cell", flaky)
        cache = CellCache(tmp_path / "cache", salt="s1")
        ledger = QuarantineLedger(tmp_path / "q")
        cells = specs(3)
        payloads, stats = execute_cells(
            cells,
            cache=cache,
            quarantine=ledger,
            max_retries=2,
            failure_mode="continue",
        )
        assert payloads[1] is None
        assert stats.failed == 1 and stats.quarantined == 0
        key = cache.key_for(cells[1])
        assert not ledger.is_quarantined(key)
        report = ledger.load_report(key)
        assert report["classification"] == "exhausted"
        assert len(set(report["signatures"])) == 2  # genuinely differing

        attempts_before = calls.count(2)
        execute_cells(
            cells,
            cache=cache,
            quarantine=QuarantineLedger(tmp_path / "q"),  # reopened
            max_retries=2,
            failure_mode="continue",
        )
        # A fresh budget was spent — the cell was not skipped.
        assert calls.count(2) == attempts_before + 2

    def test_quarantined_cell_raises_typed_error(self, tmp_path, monkeypatch):
        def always_fails(spec):
            raise SimulationError("kaboom")

        monkeypatch.setattr("repro.campaign.engine.run_cell", always_fails)
        cache = CellCache(tmp_path / "cache", salt="s1")
        cells = specs(1)
        with pytest.raises(CampaignError):
            execute_cells(cells, cache=cache, quarantine=tmp_path / "q")
        with pytest.raises(CampaignError) as excinfo:
            execute_cells(cells, cache=cache, quarantine=tmp_path / "q")
        assert isinstance(excinfo.value.cause, QuarantinedCellError)
        assert excinfo.value.attempts == 0


class TestTimeout:
    def test_hung_cell_is_killed_and_does_not_stall_matrix(
        self, tmp_path, monkeypatch
    ):
        def sleepy(spec):
            if spec.seed == 2:
                time.sleep(60)
            return well_behaved(spec)

        monkeypatch.setattr("repro.campaign.engine.run_cell", sleepy)
        ledger = QuarantineLedger(tmp_path / "q")
        cache = CellCache(tmp_path / "cache", salt="s1")
        cells = specs(3)
        start = time.monotonic()
        payloads, stats = execute_cells(
            cells,
            workers=2,
            timeout=0.75,
            max_retries=1,
            cache=cache,
            quarantine=ledger,
            failure_mode="continue",
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30, "timeout enforcement failed to preempt the hang"
        assert stats.timeouts >= 1
        assert payloads[1] is None
        assert payloads[0] == well_behaved(cells[0])
        assert payloads[2] == well_behaved(cells[2])
        report = ledger.load_report(cache.key_for(cells[1]))
        assert report["signatures"] == ["timeout"]
        assert report["error_type"] == "CellTimeoutError"

    def test_timeout_kill_collateral_is_not_charged(self, tmp_path, monkeypatch):
        """Enforcing one cell's deadline kills the whole pool; cells
        that were merely running inside their own deadline are
        collateral damage and must be resubmitted free of charge.
        With ``max_retries=1`` a single wrongly-charged attempt would
        fail the innocent cell outright."""
        sentinel = tmp_path / "collateral-killed-once"

        def staged(spec):
            if spec.seed == 1:
                time.sleep(60)  # the genuine timeout
            if spec.seed == 2:
                time.sleep(1.0)  # stagger seed 3's start/deadline
            if spec.seed == 3 and not sentinel.exists():
                sentinel.touch()
                time.sleep(60)  # asleep when seed 1's kill lands
            return well_behaved(spec)

        monkeypatch.setattr("repro.campaign.engine.run_cell", staged)
        cells = specs(3)
        payloads, stats = execute_cells(
            cells,
            workers=2,
            timeout=2.0,
            max_retries=1,
            failure_mode="continue",
        )
        assert sentinel.exists(), "the collateral cell never ran"
        assert stats.timeouts == 1
        assert payloads[0] is None  # the hung cell, charged and failed
        assert payloads[1] == well_behaved(cells[1])
        # The innocent bystander survived despite the 1-attempt budget.
        assert payloads[2] == well_behaved(cells[2])
        assert stats.failed == 1

    def test_timeout_forces_isolation_even_with_one_worker(
        self, tmp_path, monkeypatch
    ):
        """``workers=1`` with a timeout still runs cells in a worker
        process — inline execution could never preempt a hang."""

        def sleepy(spec):
            if spec.seed == 1:
                time.sleep(60)
            return well_behaved(spec)

        monkeypatch.setattr("repro.campaign.engine.run_cell", sleepy)
        cells = specs(2)
        payloads, stats = execute_cells(
            cells,
            workers=1,
            timeout=0.75,
            max_retries=1,
            failure_mode="continue",
        )
        assert stats.timeouts >= 1
        assert payloads[0] is None
        assert payloads[1] == well_behaved(cells[1])


class TestCheckpointRecovery:
    def test_campaign_restores_from_checkpoint_without_cache(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            "repro.campaign.engine.run_cell", well_behaved
        )
        ckpt = tmp_path / "campaign.checkpoint.json"
        cells = specs(4)
        _, cold = execute_cells(cells, checkpoint=ckpt, checkpoint_every=1)
        assert cold.executed == 4

        def must_not_run(spec):  # pragma: no cover - failure mode
            raise AssertionError("cell re-ran despite checkpoint")

        monkeypatch.setattr("repro.campaign.engine.run_cell", must_not_run)
        payloads, warm = execute_cells(cells, checkpoint=ckpt)
        assert warm.executed == 0
        assert warm.hits == 4 and warm.restored == 4
        assert payloads == [well_behaved(spec) for spec in cells]

    def test_checkpoint_heals_wiped_cache(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.campaign.engine.run_cell", well_behaved)
        ckpt = tmp_path / "c.json"
        cache_dir = tmp_path / "cache"
        cells = specs(2)
        execute_cells(
            cells,
            cache=CellCache(cache_dir, salt="s1"),
            checkpoint=ckpt,
            checkpoint_every=1,
        )
        # Simulate losing the cache but keeping the checkpoint.
        for entry in cache_dir.rglob("*.json"):
            entry.unlink()
        cache = CellCache(cache_dir, salt="s1")
        _, stats = execute_cells(cells, cache=cache, checkpoint=ckpt)
        assert stats.restored == 2 and stats.executed == 0
        # Restored entries were written back into the cache.
        assert cache.get(cells[0]) == well_behaved(cells[0])


_GRACEFUL_SCRIPT = """
import os, signal, sys
from repro.campaign import CampaignInterrupted, CellCache, execute_cells
from tests.test_chaos import orchestrator_cells

cells = orchestrator_cells()
cache_dir, log_path, ckpt_path = sys.argv[1:4]
seen = []

def on_result(index, spec, payload, was_hit):
    seen.append(index)
    if len(seen) == 3:
        os.kill(os.getpid(), signal.SIGTERM)  # systemd-style stop

try:
    execute_cells(
        cells,
        cache=CellCache(cache_dir),
        checkpoint=ckpt_path,
        checkpoint_every=100,  # only the shutdown path may flush
        log_path=log_path,
        on_result=on_result,
    )
except CampaignInterrupted as exc:
    sys.exit(40 + (1 if exc.signum == signal.SIGTERM else 2))
sys.exit(0)
"""


class TestGracefulShutdown:
    def test_sigterm_flushes_state_and_resumes_cleanly(self, tmp_path):
        """SIGTERM mid-campaign: the engine flushes the checkpoint and
        event log, re-raises as CampaignInterrupted, and a resumed run
        restores the completed cells bit-identically."""
        cache_dir = tmp_path / "cache"
        log = tmp_path / "events.jsonl"
        ckpt = tmp_path / "campaign.checkpoint.json"
        env = dict(os.environ)
        repo = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo / "src"), str(repo), env.get("PYTHONPATH", "")]
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _GRACEFUL_SCRIPT,
                str(cache_dir),
                str(log),
                str(ckpt),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        # 41 == CampaignInterrupted propagated carrying SIGTERM.
        assert proc.returncode == 41, proc.stderr

        # The shutdown path recorded the interruption in the event log.
        events = list(iter_events(log))
        interrupted = [e for e in events if e.get("event") == "interrupted"]
        assert interrupted and interrupted[-1]["signal"] == signal.SIGTERM
        # The checkpoint was flushed despite checkpoint_every=100.
        ckpt_doc = json.loads(ckpt.read_text())
        assert len(ckpt_doc["entries"]) >= 3

        # Clean resume from checkpoint alone (no cache): completed
        # cells restore, the rest run, hashes match an undisturbed run.
        cells = orchestrator_cells()
        resumed, stats = execute_cells(cells, checkpoint=ckpt)
        assert stats.restored >= 3
        assert stats.restored + stats.executed == len(cells)
        undisturbed, _ = execute_cells(
            cells, cache=CellCache(tmp_path / "fresh")
        )
        assert [payload_hash(p) for p in resumed] == [
            payload_hash(p) for p in undisturbed
        ]

    def test_torn_log_and_corrupt_cache_degrade_to_recompute(
        self, tmp_path, monkeypatch
    ):
        """A truncated trailing event-log line and a corrupt cache
        entry (torn writes from a crash) must not poison a resume: the
        log reader skips the torn line and the corrupt cell silently
        recomputes."""
        monkeypatch.setattr("repro.campaign.engine.run_cell", well_behaved)
        cache = CellCache(tmp_path / "cache", salt="s1")
        log = tmp_path / "events.jsonl"
        cells = specs()
        first, _ = execute_cells(cells, cache=cache, log_path=log)

        complete_before = len(list(iter_events(log)))
        with open(log, "a") as fh:
            fh.write('{"event": "cell", "status": "do')  # torn mid-write
        cache.path_for(cells[2]).write_bytes(b'{"payload": tor')

        events = list(iter_events(log))
        assert len(events) == complete_before, "torn line must be skipped"
        resumed, stats = execute_cells(cells, cache=cache, log_path=log)
        assert stats.hits == len(cells) - 1
        assert stats.executed == 1, "corrupt entry must recompute"
        assert stats.failed == 0
        assert [payload_hash(p) for p in resumed] == [
            payload_hash(p) for p in first
        ]
