"""Tests for the runtime invariant checker, deadlock watchdog,
typed error hierarchy and the bounded event ring.

The acceptance scenario for the robustness subsystem lives here: a
seeded artificial deadlock (a permanently stalled router) must trip
the watchdog with a :class:`DeadlockError` whose post-mortem names the
blocked packet's route and the states of the routers on it.
"""

import pytest

from repro.core import PowerPunchPG
from repro.noc import (
    BufferOverflowError,
    DeadlockError,
    Direction,
    DrainTimeoutError,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    InvariantChecker,
    InvariantViolation,
    Network,
    NIQueueOverflowError,
    NoCConfig,
    SimulationError,
    TopologyError,
    VirtualNetwork,
    control_packet,
)
from repro.noc.buffers import VirtualChannel
from repro.noc.packet import make_flits
from repro.noc.tracing import EventRing
from repro.traffic import SyntheticTraffic, measure


def small_config():
    return NoCConfig(width=4, height=4)


class TestEventRing:
    def test_ring_is_bounded_and_keeps_newest(self):
        ring = EventRing(4)
        for cycle in range(10):
            ring.record(cycle, "tick", cycle)
        assert len(ring) == 4
        assert [e.cycle for e in ring.snapshot()] == [6, 7, 8, 9]
        assert ring.recorded == 10

    def test_render_reports_displaced_events(self):
        ring = EventRing(2)
        for cycle in range(5):
            ring.record(cycle, "tick", cycle, packet_id=cycle)
        text = ring.render()
        assert "3 earlier events displaced" in text
        assert "pkt#4" in text

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventRing(0)


class TestCleanRuns:
    def test_strict_checker_clean_on_powerpunch_traffic(self):
        net = Network(small_config(), PowerPunchPG())
        checker = InvariantChecker(strict=True)
        net.install_invariants(checker)
        traffic = SyntheticTraffic(net, "uniform_random", 0.02, seed=3)
        measure(net, traffic, warmup=200, measurement=600)
        assert checker.checks_run > 0
        assert checker.violations == []
        # Everything sent was delivered and accounted for.
        assert checker.flits_sent == checker.flits_ejected
        assert not checker.live

    def test_checker_does_not_perturb_simulation(self):
        """The checker observes; identical runs with and without it
        must produce bit-identical statistics."""

        def run(with_checker):
            net = Network(small_config(), PowerPunchPG())
            if with_checker:
                net.install_invariants(InvariantChecker(strict=True))
            traffic = SyntheticTraffic(net, "uniform_random", 0.03, seed=11)
            measure(net, traffic, warmup=200, measurement=600)
            s = net.stats
            return (s.delivered, s.total_network_latency, s.total_blocked_routers)

        assert run(True) == run(False)

    def test_check_interval_amortizes_checks(self):
        net = Network(small_config())
        checker = InvariantChecker(strict=True, check_interval=10)
        net.install_invariants(checker)
        net.run(100)
        assert checker.checks_run == 10

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            InvariantChecker(check_interval=0)
        with pytest.raises(ValueError):
            InvariantChecker(max_network_age=0)


class TestTamperDetection:
    """Each structural invariant fires when its bookkeeping is broken."""

    def _checked_net(self, strict=True):
        net = Network(small_config())
        checker = InvariantChecker(strict=strict)
        net.install_invariants(checker)
        return net, checker

    def test_stolen_credit_detected(self):
        net, checker = self._checked_net()
        net.routers[5].output_ports[Direction.XPOS].credits[0] -= 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_credit_conservation(net.cycle)
        assert excinfo.value.invariant == "credit-conservation"
        assert excinfo.value.router == 5

    def test_forged_credit_detected_on_ni_link(self):
        net, checker = self._checked_net()
        net.interfaces[3].credits[0] += 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_credit_conservation(net.cycle)
        assert excinfo.value.invariant == "credit-conservation"
        assert excinfo.value.router == 3

    def test_phantom_flit_detected(self):
        net, checker = self._checked_net()
        checker.flits_sent += 1  # claim a flit the network never saw
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_flit_conservation(net.cycle)
        assert excinfo.value.invariant == "flit-conservation"

    def test_orphaned_vc_owner_detected(self):
        net, checker = self._checked_net()
        # Output port claims an owner whose input VC is actually IDLE.
        net.routers[0].output_ports[Direction.XPOS].owner[0] = (Direction.LOCAL, 0)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_vc_ownership(net.cycle)
        assert excinfo.value.invariant == "vc-ownership"

    def test_non_strict_mode_collects_instead_of_raising(self):
        net, checker = self._checked_net(strict=False)
        net.routers[5].output_ports[Direction.XPOS].credits[0] -= 1
        net.run(5)
        assert checker.violations
        assert all(
            v.invariant == "credit-conservation" for v in checker.violations
        )


class TestSafetyFaultDetection:
    """The injector's safety faults exist to be caught by the checker."""

    def test_dropped_credit_breaks_credit_conservation(self):
        net = Network(small_config())
        checker = InvariantChecker(strict=False)
        net.install_invariants(checker)
        net.install_faults(
            FaultInjector(FaultSchedule([FaultSpec(kind="credit_drop", count=1)]))
        )
        net.inject(control_packet(0, 3, VirtualNetwork.REQUEST, 0))
        net.run(60)
        assert net.faults.counts["credit_drop"] == 1
        assert any(
            v.invariant == "credit-conservation" for v in checker.violations
        )

    def test_corrupted_flit_flagged_on_arrival(self):
        net = Network(small_config())
        net.install_invariants(InvariantChecker(strict=True))
        net.install_faults(
            FaultInjector(FaultSchedule([FaultSpec(kind="flit_corrupt", count=1)]))
        )
        net.inject(control_packet(0, 1, VirtualNetwork.REQUEST, 0))
        with pytest.raises(InvariantViolation) as excinfo:
            net.run(60)
        assert excinfo.value.invariant == "flit-integrity"
        assert net.faults.counts["flit_corrupt"] == 1

    def test_fault_events_reach_the_flight_recorder(self):
        net = Network(small_config())
        checker = InvariantChecker(strict=False)
        net.install_invariants(checker)
        net.install_faults(
            FaultInjector(FaultSchedule([FaultSpec(kind="credit_drop", count=1)]))
        )
        net.inject(control_packet(0, 3, VirtualNetwork.REQUEST, 0))
        net.run(60)
        kinds = {e.kind for e in checker.ring.snapshot()}
        assert "fault:credit_drop" in kinds


class TestWatchdog:
    def test_watchdog_catches_seeded_deadlock(self):
        """Acceptance scenario: permanently freeze a router on the
        packet's path; the watchdog must raise a DeadlockError whose
        post-mortem names the route and the routers' PG states."""
        scheme = PowerPunchPG(wakeup_latency=8)
        net = Network(small_config(), scheme)
        checker = InvariantChecker(strict=True, max_network_age=200)
        net.install_invariants(checker)
        net.install_faults(
            FaultInjector(
                FaultSchedule([FaultSpec(kind="router_stall", router=2, start=0)])
            )
        )
        for _ in range(30):
            net.step()
        packet = control_packet(0, 3, VirtualNetwork.REQUEST, net.cycle)
        net.inject(packet)
        with pytest.raises(DeadlockError) as excinfo:
            net.run(2000)
        err = excinfo.value
        assert err.post_mortem is not None
        stuck = err.post_mortem.stuck_packets[0]
        assert stuck["packet_id"] == packet.packet_id
        assert stuck["route"] == [0, 1, 2, 3]
        dumps = {r["router_id"]: r for r in err.post_mortem.routers}
        assert set(dumps) >= {0, 1, 2, 3}
        for dump in dumps.values():
            assert dump["pg_state"] in ("active", "off", "waking", "unavailable")
        # The packet's flit is visibly parked at the stalled router.
        fronts = {
            occ["front_packet"]
            for rid in (1, 2)
            for occ in dumps[rid]["occupied_vcs"]
        }
        assert packet.packet_id in fronts
        # The rendered error is self-contained: route + router states.
        text = str(err)
        assert "post-mortem" in text
        assert "route: 0 -> 1 -> 2 -> 3" in text
        assert "pg=" in text

    def test_watchdog_queue_age_catches_starved_ni(self):
        """A packet that never even enters the mesh (every wakeup at
        its source router fails) trips the queue-age bound."""
        scheme = PowerPunchPG(wakeup_latency=8)
        net = Network(small_config(), scheme)
        checker = InvariantChecker(strict=True, max_queue_age=100)
        net.install_invariants(checker)
        net.install_faults(
            FaultInjector(
                FaultSchedule([FaultSpec(kind="wakeup_fail", router=0)])
            )
        )
        for _ in range(30):
            net.step()  # let the idle mesh gate off
        assert scheme.controllers[0].is_off
        packet = control_packet(0, 3, VirtualNetwork.REQUEST, net.cycle)
        net.inject(packet)
        with pytest.raises(DeadlockError) as excinfo:
            net.run(1000)
        stuck = excinfo.value.post_mortem.stuck_packets[0]
        assert stuck["packet_id"] == packet.packet_id
        assert stuck["injected_at"] is None

    def test_watchdog_quiet_on_healthy_run(self):
        net = Network(small_config(), PowerPunchPG())
        net.install_invariants(InvariantChecker(strict=True, max_network_age=500))
        for _ in range(30):
            net.step()
        packet = control_packet(0, 15, VirtualNetwork.REQUEST, net.cycle)
        net.inject(packet)
        net.run_until_drained(3000)
        assert packet.delivered_at is not None

    def test_drain_timeout_carries_post_mortem(self):
        net = Network(small_config(), PowerPunchPG())
        net.install_invariants(InvariantChecker(strict=True, max_network_age=10_000))
        net.install_faults(
            FaultInjector(
                FaultSchedule([FaultSpec(kind="router_stall", router=1, start=0)])
            )
        )
        net.inject(control_packet(0, 3, VirtualNetwork.REQUEST, 0))
        with pytest.raises(DrainTimeoutError) as excinfo:
            net.run_until_drained(300)
        assert excinfo.value.post_mortem is not None
        assert "post-mortem" in str(excinfo.value)


class TestTypedErrors:
    def test_context_decorates_message(self):
        err = SimulationError(
            "boom", cycle=5, router=2, port=Direction.XPOS, vc=1, packet=9
        )
        assert str(err) == "boom [cycle=5 router=2 port=XPOS vc=1 packet=9]"
        assert (err.cycle, err.router, err.vc, err.packet) == (5, 2, 1, 9)

    def test_plain_message_untouched(self):
        assert str(SimulationError("boom")) == "boom"

    def test_hierarchy_stays_runtimeerror_compatible(self):
        for cls in (
            TopologyError,
            BufferOverflowError,
            NIQueueOverflowError,
            DrainTimeoutError,
            InvariantViolation,
            DeadlockError,
        ):
            assert issubclass(cls, RuntimeError)

    def test_vc_overflow_raises_typed_error_with_context(self):
        vc = VirtualChannel(0, depth=1, port_direction=Direction.XNEG)
        packet = control_packet(0, 1, VirtualNetwork.REQUEST, 0)
        flit = make_flits(packet)[0]
        vc.push(flit, 10)
        with pytest.raises(BufferOverflowError, match="overflow") as excinfo:
            vc.push(flit, 11)
        assert excinfo.value.cycle == 11
        assert excinfo.value.port is Direction.XNEG

    def test_invariant_violation_names_its_invariant(self):
        err = InvariantViolation("flit-conservation", "lost one", cycle=3)
        assert err.invariant == "flit-conservation"
        assert "flit-conservation" in str(err)
        assert "[cycle=3]" in str(err)


@pytest.mark.parametrize("kernel", ["active", "naive"])
class TestWatchdogKernelParity:
    """The active-set kernel parks idle routers and skips them in the
    per-cycle loop; a parked (or power-gated) router must never
    suppress the watchdog's progress checks.  Both kernels must detect
    the same deadlocks — and at the same cycle (checked below)."""

    def seeded_deadlock(self, kernel):
        scheme = PowerPunchPG(wakeup_latency=8)
        net = Network(NoCConfig(width=4, height=4, kernel=kernel), scheme)
        checker = InvariantChecker(strict=True, max_network_age=200)
        net.install_invariants(checker)
        net.install_faults(
            FaultInjector(
                FaultSchedule([FaultSpec(kind="router_stall", router=2, start=0)])
            )
        )
        for _ in range(30):
            net.step()  # the idle mesh parks (and gates off) routers
        packet = control_packet(0, 3, VirtualNetwork.REQUEST, net.cycle)
        net.inject(packet)
        return net, packet

    def test_parked_routers_do_not_suppress_watchdog(self, kernel):
        net, packet = self.seeded_deadlock(kernel)
        with pytest.raises(DeadlockError) as excinfo:
            net.run(2000)
        stuck = excinfo.value.post_mortem.stuck_packets[0]
        assert stuck["packet_id"] == packet.packet_id

    def test_starved_ni_detected_while_mesh_fully_parked(self, kernel):
        """Every wakeup at the source router fails, so the whole mesh
        stays parked/off — the queue-age bound must still fire."""
        scheme = PowerPunchPG(wakeup_latency=8)
        net = Network(NoCConfig(width=4, height=4, kernel=kernel), scheme)
        checker = InvariantChecker(strict=True, max_queue_age=100)
        net.install_invariants(checker)
        net.install_faults(
            FaultInjector(
                FaultSchedule([FaultSpec(kind="wakeup_fail", router=0)])
            )
        )
        for _ in range(30):
            net.step()
        assert scheme.controllers[0].is_off
        net.inject(control_packet(0, 3, VirtualNetwork.REQUEST, net.cycle))
        with pytest.raises(DeadlockError) as excinfo:
            net.run(1000)
        assert excinfo.value.post_mortem.stuck_packets[0]["injected_at"] is None


def test_watchdog_detection_cycle_is_kernel_exact():
    """Deadlock detection is part of the cycle-accurate contract: both
    kernels must trip the watchdog on the same cycle."""
    detected = {}
    for kernel in ("active", "naive"):
        scheme = PowerPunchPG(wakeup_latency=8)
        net = Network(NoCConfig(width=4, height=4, kernel=kernel), scheme)
        net.install_invariants(InvariantChecker(strict=True, max_network_age=200))
        net.install_faults(
            FaultInjector(
                FaultSchedule([FaultSpec(kind="router_stall", router=2, start=0)])
            )
        )
        for _ in range(30):
            net.step()
        net.inject(control_packet(0, 3, VirtualNetwork.REQUEST, net.cycle))
        with pytest.raises(DeadlockError):
            net.run(2000)
        detected[kernel] = net.cycle
    assert detected["active"] == detected["naive"]
