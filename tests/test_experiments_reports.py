"""Tests for the per-figure report generators (fast: synthetic records)."""

import pytest

from repro.experiments import fig7_fig8, fig9_fig10, fig11, headline
from repro.experiments.common import RunRecord


def make_record(bench, scheme, latency, exec_time, blocked, wait, static, overhead):
    return RunRecord(
        workload=bench,
        scheme=scheme,
        execution_time=exec_time,
        avg_packet_latency=latency,
        avg_total_latency=latency + 3,
        avg_blocked_routers=blocked,
        avg_wakeup_wait=wait,
        injection_rate=0.01,
        dynamic_energy=0.2,
        static_energy=static,
        overhead_energy=overhead,
        cycles=exec_time,
    )


@pytest.fixture
def records():
    rows = []
    for bench in ("alpha", "beta"):
        rows.append(make_record(bench, "No-PG", 30.0, 1000, 0.0, 0.0, 1.0, 0.0))
        rows.append(make_record(bench, "ConvOpt-PG", 52.0, 1100, 4.2, 20.0, 0.2, 0.05))
        rows.append(
            make_record(bench, "PowerPunch-Signal", 34.0, 1020, 1.1, 5.0, 0.19, 0.06)
        )
        rows.append(
            make_record(bench, "PowerPunch-PG", 32.0, 1005, 0.9, 1.8, 0.18, 0.06)
        )
    return rows


class TestFig7Fig8Report:
    def test_contains_tables_and_headline(self, records):
        out = fig7_fig8.report(records)
        assert "Figure 7" in out and "Figure 8" in out
        assert "paper +69.1%" in out
        assert "alpha" in out and "beta" in out

    def test_normalized_execution_row(self, records):
        out = fig7_fig8.report(records)
        assert "AVG" in out


class TestFig9Fig10Report:
    def test_blocked_and_wait_tables(self, records):
        out = fig9_fig10.report(records)
        assert "Figure 9" in out and "Figure 10" in out
        assert "4.200" in out  # ConvOpt blocked
        assert "1.800" in out  # PP-PG wait


class TestFig11Report:
    def test_breakdown_normalized(self, records):
        out = fig11.report(records)
        assert "dynamic" in out and "pg-overhead" in out
        assert "net router static energy saved" in out


class TestHeadline:
    def test_compute_headline_values(self, records):
        h = headline.compute_headline(records)
        assert h["latency_penalty"]["ConvOpt-PG"] == pytest.approx(22 / 33, rel=1e-6)
        assert h["execution_penalty"]["PowerPunch-PG"] == pytest.approx(0.005)
        assert h["static_saved"]["PowerPunch-PG"] == pytest.approx(1 - 0.24)
        assert 0 < h["penalty_reduction_vs_convopt"] < 1

    def test_report_mentions_paper_values(self, records):
        out = headline.report(records)
        assert ">83%" in out and "61.2%" in out
