"""Tests for the closed-loop system model: streams, cores, chip runs."""

import pytest

from repro.core import ConvOptPG, NoPG, PowerPunchPG
from repro.noc import NoCConfig
from repro.system import (
    AccessStream,
    Chip,
    PARSEC_BENCHMARKS,
    PARSEC_PROFILES,
    StreamProfile,
    get_profile,
)


class TestStreamProfile:
    def test_mean_gap(self):
        p = StreamProfile(mem_op_fraction=0.25)
        assert p.mean_gap == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamProfile(mem_op_fraction=0.0)
        with pytest.raises(ValueError):
            StreamProfile(cold_fraction=1.5)


class TestAccessStream:
    def test_deterministic(self):
        a = AccessStream(3, StreamProfile(), seed=7)
        b = AccessStream(3, StreamProfile(), seed=7)
        assert [a.next_access() for _ in range(50)] == [
            b.next_access() for _ in range(50)
        ]

    def test_different_cores_differ(self):
        a = AccessStream(0, StreamProfile(), seed=7)
        b = AccessStream(1, StreamProfile(), seed=7)
        assert [a.next_access() for _ in range(20)] != [
            b.next_access() for _ in range(20)
        ]

    def test_private_blocks_are_disjoint_across_cores(self):
        profile = StreamProfile(shared_fraction=0.0, cold_fraction=0.0)
        streams = [AccessStream(i, profile, seed=1) for i in range(4)]
        blocks = [
            {stream.next_access()[1] for _ in range(200)} for stream in streams
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (blocks[i] & blocks[j])

    def test_shared_blocks_overlap_across_cores(self):
        profile = StreamProfile(shared_fraction=1.0)
        stream_a = AccessStream(0, profile, seed=1)
        stream_b = AccessStream(1, profile, seed=2)
        a = {stream_a.next_access()[1] for _ in range(300)}
        b = {stream_b.next_access()[1] for _ in range(300)}
        # Both draw from the same shared pool.
        sa = {blk for blk in a if blk >= 1 << 44}
        sb = {blk for blk in b if blk >= 1 << 44}
        assert sa & sb

    def test_gap_mean_in_range(self):
        profile = StreamProfile(
            mem_op_fraction=0.5, comm_accesses=0, compute_accesses=0
        )
        stream = AccessStream(0, profile, seed=3)
        gaps = [stream.next_access()[0] for _ in range(3000)]
        assert sum(gaps) / len(gaps) == pytest.approx(profile.mean_gap, rel=0.2)


class TestParsecProfiles:
    def test_all_eight_benchmarks_present(self):
        assert len(PARSEC_BENCHMARKS) == 8
        assert set(PARSEC_BENCHMARKS) == set(PARSEC_PROFILES)

    def test_get_profile(self):
        assert get_profile("canneal") is PARSEC_PROFILES["canneal"]
        with pytest.raises(ValueError):
            get_profile("doom")

    def test_canneal_is_most_memory_intensive(self):
        canneal = get_profile("canneal")
        blackscholes = get_profile("blackscholes")
        assert canneal.cold_fraction > blackscholes.cold_fraction
        assert canneal.shared_fraction > blackscholes.shared_fraction


class TestChipRuns:
    def make_chip(self, scheme, bench="bodytrack", width=4, instructions=600):
        return Chip(
            NoCConfig(width=width, height=width),
            scheme,
            get_profile(bench),
            instructions_per_core=instructions,
            seed=1,
            benchmark=bench,
        )

    def test_run_completes_and_reports(self):
        chip = self.make_chip(NoPG())
        result = chip.run(max_cycles=500_000)
        assert result.execution_time > 0
        assert all(core.done for core in chip.cores)
        assert result.avg_packet_latency > 0
        assert 0 < result.l1_miss_rate < 0.5

    def test_all_cores_retire_quota(self):
        chip = self.make_chip(NoPG(), instructions=400)
        chip.run(max_cycles=500_000)
        assert all(core.retired >= 400 for core in chip.cores)

    def test_deterministic_execution(self):
        a = self.make_chip(NoPG()).run(max_cycles=500_000)
        b = self.make_chip(NoPG()).run(max_cycles=500_000)
        assert a.execution_time == b.execution_time
        assert a.packets == b.packets

    def test_powerpunch_close_to_nopg(self):
        base = self.make_chip(NoPG()).run(max_cycles=500_000)
        pp = self.make_chip(PowerPunchPG()).run(max_cycles=500_000)
        assert pp.execution_time <= 1.05 * base.execution_time

    def test_convopt_slower_than_powerpunch(self):
        conv = self.make_chip(ConvOptPG()).run(max_cycles=500_000)
        pp = self.make_chip(PowerPunchPG()).run(max_cycles=500_000)
        assert conv.avg_total_latency > pp.avg_total_latency
        assert conv.avg_wakeup_wait > pp.avg_wakeup_wait

    def test_warm_caches_suppress_compulsory_misses(self):
        warm = self.make_chip(NoPG())
        warm_res = warm.run(max_cycles=500_000)
        cold = Chip(
            NoCConfig(width=4, height=4),
            NoPG(),
            get_profile("bodytrack"),
            instructions_per_core=600,
            seed=1,
            warm_caches=False,
        )
        cold_res = cold.run(max_cycles=1_000_000)
        assert warm_res.execution_time < cold_res.execution_time

    def test_memory_controllers_at_corners(self):
        chip = self.make_chip(NoPG())
        assert sorted(chip.mcs) == [0, 3, 12, 15]

    def test_8x8_run(self):
        chip = Chip(
            NoCConfig(),
            PowerPunchPG(),
            get_profile("swaptions"),
            instructions_per_core=300,
            seed=2,
            benchmark="swaptions",
        )
        result = chip.run(max_cycles=1_000_000)
        assert result.execution_time > 0
        assert result.avg_blocked_routers >= 0
