"""Closed-loop integration: the NoRD-like baseline under the CMP model."""


from repro.baselines import NoRDLike
from repro.core import NoPG
from repro.noc import NoCConfig
from repro.system import Chip, get_profile


class TestNoRDClosedLoop:
    def run_chip(self, scheme, bench="bodytrack", instructions=400):
        chip = Chip(
            NoCConfig(width=4, height=4),
            scheme,
            get_profile(bench),
            instructions_per_core=instructions,
            seed=3,
            benchmark=bench,
        )
        return chip.run(max_cycles=2_000_000)

    def test_workload_completes_under_nord(self):
        result = self.run_chip(NoRDLike())
        assert result.execution_time > 0
        assert result.packets > 0

    def test_nord_slower_than_nopg_but_finishes(self):
        base = self.run_chip(NoPG())
        nord = self.run_chip(NoRDLike())
        assert nord.execution_time >= base.execution_time
        # Detours cost latency but not correctness: all cores retired.
        assert nord.packets > 0

    def test_coherence_survives_detours(self):
        """Protocol messages riding the bypass ring must still keep the
        protocol consistent (delivery listeners fire out-of-band)."""
        scheme = NoRDLike()
        chip = Chip(
            NoCConfig(width=4, height=4),
            scheme,
            get_profile("canneal"),
            instructions_per_core=300,
            seed=5,
            benchmark="canneal",
        )
        chip.run(max_cycles=2_000_000)
        for l1 in chip.l1s:
            assert not l1.mshrs
            assert not l1.wb_buffers
        for directory in chip.directories:
            for block, entry in directory.entries.items():
                assert not entry.busy, (directory.node, block)
