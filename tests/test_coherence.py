"""MESI directory-protocol tests.

Drives the L1 controllers directly over the real NoC (cores disabled)
and checks protocol transitions, data versioning and the coherence
invariants under directed and randomized scenarios.
"""

import random

import pytest

from repro.core import NoPG
from repro.noc import NoCConfig
from repro.system import Chip, StreamProfile


class Harness:
    """A chip whose cores are parked so tests drive the L1s directly."""

    def __init__(self, width=4, seed=1):
        profile = StreamProfile()
        self.chip = Chip(
            NoCConfig(width=width, height=width),
            NoPG(),
            profile,
            instructions_per_core=1,
            seed=seed,
            benchmark="test",
            warm_caches=False,
        )
        self.completions = []
        for node, core in enumerate(self.chip.cores):
            core.done_at = 0  # park the core
        for node, l1 in enumerate(self.chip.l1s):
            l1.on_complete = self._completion_recorder(node)

    def _completion_recorder(self, node):
        def record(block, cycle):
            self.completions.append((node, block, cycle))

        return record

    # ------------------------------------------------------------------
    def access(self, node, block, is_write=False):
        l1 = self.chip.l1s[node]
        assert l1.can_accept(block) or l1.cache.contains(block)
        return l1.access(block, is_write, self.chip.network.cycle)

    def run_until_complete(self, node, block, max_cycles=3000):
        for _ in range(max_cycles):
            if (node, block) in [(n, b) for n, b, _ in self.completions]:
                return
            self.chip.step()
        raise AssertionError(f"transaction ({node}, {block}) never completed")

    def settle(self, cycles=400):
        for _ in range(cycles):
            self.chip.step()

    def state(self, node, block):
        return self.chip.l1s[node].state_of(block)

    def version(self, node, block):
        line = self.chip.l1s[node].cache.lookup(block, touch=False)
        return None if line is None else line.version

    # ------------------------------------------------------------------
    def assert_single_writer(self, block):
        holders = [
            node
            for node in range(len(self.chip.l1s))
            if self.state(node, block) in ("E", "M")
        ]
        assert len(holders) <= 1, f"multiple E/M holders for {block}: {holders}"

    def assert_coherent_at_quiescence(self, block):
        self.assert_single_writer(block)
        versions = [
            self.version(n, block)
            for n in range(len(self.chip.l1s))
            if self.version(n, block) is not None
        ]
        if len(versions) > 1:
            # All shared copies must agree.
            assert len(set(versions)) == 1, versions


@pytest.fixture
def harness():
    return Harness()


BLOCK = 1 << 50  # a block whose home is node (BLOCK % 16)


class TestBasicTransitions:
    def test_load_miss_gets_exclusive(self, harness):
        assert harness.access(1, BLOCK) is False
        harness.run_until_complete(1, BLOCK)
        assert harness.state(1, BLOCK) == "E"

    def test_second_reader_shares(self, harness):
        harness.access(1, BLOCK)
        harness.run_until_complete(1, BLOCK)
        harness.access(2, BLOCK)
        harness.run_until_complete(2, BLOCK)
        harness.settle()
        assert harness.state(2, BLOCK) == "S"
        # The first copy downgrades from E to S on the forward.
        assert harness.state(1, BLOCK) == "S"

    def test_silent_e_to_m_upgrade(self, harness):
        harness.access(1, BLOCK)
        harness.run_until_complete(1, BLOCK)
        assert harness.access(1, BLOCK, is_write=True) is True
        assert harness.state(1, BLOCK) == "M"
        assert harness.version(1, BLOCK) == 1

    def test_store_miss_gets_modified(self, harness):
        harness.access(3, BLOCK, is_write=True)
        harness.run_until_complete(3, BLOCK)
        assert harness.state(3, BLOCK) == "M"
        assert harness.version(3, BLOCK) == 1

    def test_load_hit_in_shared(self, harness):
        harness.access(1, BLOCK)
        harness.run_until_complete(1, BLOCK)
        assert harness.access(1, BLOCK) is True


class TestInvalidation:
    def test_writer_invalidates_sharers(self, harness):
        for reader in (1, 2, 5):
            harness.access(reader, BLOCK)
            harness.run_until_complete(reader, BLOCK)
        harness.settle()
        harness.access(7, BLOCK, is_write=True)
        harness.run_until_complete(7, BLOCK)
        harness.settle()
        assert harness.state(7, BLOCK) == "M"
        for reader in (1, 2, 5):
            assert harness.state(reader, BLOCK) == "I"
        harness.assert_single_writer(BLOCK)

    def test_upgrade_from_shared(self, harness):
        harness.access(1, BLOCK)
        harness.run_until_complete(1, BLOCK)
        harness.access(2, BLOCK)
        harness.run_until_complete(2, BLOCK)
        harness.settle()
        assert harness.access(2, BLOCK, is_write=True) is False  # SM_AD
        harness.completions.clear()
        harness.run_until_complete(2, BLOCK)
        harness.settle()
        assert harness.state(2, BLOCK) == "M"
        assert harness.state(1, BLOCK) == "I"

    def test_version_increments_across_writers(self, harness):
        writers = [1, 2, 3, 6, 9]
        for i, writer in enumerate(writers):
            harness.completions.clear()
            if not harness.access(writer, BLOCK, is_write=True):
                harness.run_until_complete(writer, BLOCK)
            harness.settle(50)
            assert harness.version(writer, BLOCK) == i + 1, writer
        harness.settle()
        harness.assert_single_writer(BLOCK)


class TestOwnershipTransfer:
    def test_read_after_write_gets_dirty_data(self, harness):
        harness.access(4, BLOCK, is_write=True)
        harness.run_until_complete(4, BLOCK)
        harness.completions.clear()
        harness.access(8, BLOCK)
        harness.run_until_complete(8, BLOCK)
        harness.settle()
        # Reader sees the writer's version; both end shared.
        assert harness.version(8, BLOCK) == 1
        assert harness.state(4, BLOCK) == "S"
        assert harness.state(8, BLOCK) == "S"

    def test_write_chain_transfers_ownership(self, harness):
        harness.access(4, BLOCK, is_write=True)
        harness.run_until_complete(4, BLOCK)
        harness.completions.clear()
        # Two more writers race.
        harness.access(5, BLOCK, is_write=True)
        harness.access(6, BLOCK, is_write=True)
        harness.run_until_complete(5, BLOCK)
        harness.run_until_complete(6, BLOCK)
        harness.settle()
        harness.assert_single_writer(BLOCK)
        final_versions = {harness.version(n, BLOCK) for n in (5, 6)}
        assert 3 in final_versions  # both stores applied


class TestEvictionAndWriteback:
    def test_dirty_eviction_reaches_home(self, harness):
        node = 1
        l1 = harness.chip.l1s[node]
        harness.access(node, BLOCK, is_write=True)
        harness.run_until_complete(node, BLOCK)
        # Fill the set until BLOCK is evicted (same-set blocks).
        sets = l1.cache.num_sets
        conflicts = [BLOCK + sets, BLOCK + 2 * sets]
        for i, other in enumerate(conflicts):
            harness.completions.clear()
            harness.access(node, other)
            harness.run_until_complete(node, other)
        harness.settle()
        assert harness.state(node, BLOCK) == "I"
        # A later reader must still observe version 1.
        harness.completions.clear()
        harness.access(2, BLOCK)
        harness.run_until_complete(2, BLOCK)
        assert harness.version(2, BLOCK) == 1


class TestRandomizedCoherence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_stress_preserves_invariants(self, seed):
        harness = Harness(width=4, seed=seed)
        rng = random.Random(seed)
        blocks = [(1 << 50) + i for i in range(6)]
        expected_writes = {b: 0 for b in blocks}
        for step in range(250):
            node = rng.randrange(16)
            block = rng.choice(blocks)
            is_write = rng.random() < 0.4
            l1 = harness.chip.l1s[node]
            if l1.can_accept(block) or l1.cache.contains(block):
                before = harness.state(node, block)
                hit = l1.access(block, is_write, harness.chip.network.cycle)
                if is_write and (hit or before in ("I", "S", "E", "M")):
                    expected_writes[block] += 1
            for _ in range(rng.randrange(1, 12)):
                harness.chip.step()
            if step % 25 == 0:
                for b in blocks:
                    harness.assert_single_writer(b)
        harness.settle(2000)
        for b in blocks:
            harness.assert_coherent_at_quiescence(b)

    def test_no_outstanding_state_after_quiescence(self):
        harness = Harness(width=4, seed=9)
        rng = random.Random(9)
        blocks = [(1 << 50) + i for i in range(4)]
        for _ in range(150):
            node = rng.randrange(16)
            block = rng.choice(blocks)
            l1 = harness.chip.l1s[node]
            if l1.can_accept(block) or l1.cache.contains(block):
                l1.access(block, rng.random() < 0.5, harness.chip.network.cycle)
            harness.chip.step()
        harness.settle(3000)
        for l1 in harness.chip.l1s:
            assert not l1.mshrs, l1.mshrs
            assert not l1.wb_buffers
        for directory in harness.chip.directories:
            for block, entry in directory.entries.items():
                assert not entry.busy, (directory.node, block)
                assert not entry.waiting
