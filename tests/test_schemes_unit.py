"""Unit tests for scheme wiring: punch generation, windows, hooks."""


from repro.core import ConvOptPG, NoPG, PowerPunchPG, PowerPunchSignal
from repro.noc import Network, NoCConfig, VirtualNetwork, control_packet


def make(scheme, stages=3, width=8):
    net = Network(NoCConfig(width=width, height=width, router_stages=stages), scheme)
    return net, scheme


class TestConfigurationDerivation:
    def test_auto_punch_hops_3stage(self):
        net, scheme = make(PowerPunchSignal(wakeup_latency=8))
        assert scheme.punch_hops == 3  # ceil(8/3)

    def test_auto_punch_hops_4stage(self):
        net, scheme = make(PowerPunchSignal(wakeup_latency=8), stages=4)
        assert scheme.punch_hops == 2  # ceil(8/4)

    def test_explicit_punch_hops_wins(self):
        net, scheme = make(PowerPunchSignal(wakeup_latency=8, punch_hops=4))
        assert scheme.punch_hops == 4

    def test_convopt_is_one_hop(self):
        net, scheme = make(ConvOptPG())
        assert scheme.punch_hops == 1
        assert scheme.expectation_window == 0

    def test_powerpunch_forewarning_window(self):
        net, scheme = make(PowerPunchSignal(wakeup_latency=8))
        # punch_hops * (Trouter + Tlink) = 3 * 4.
        assert scheme.expectation_window == 12

    def test_scheme_names(self):
        assert NoPG.name == "No-PG"
        assert ConvOptPG.name == "ConvOpt-PG"
        assert PowerPunchSignal.name == "PowerPunch-Signal"
        assert PowerPunchPG.name == "PowerPunch-PG"


class TestSlackFlags:
    def test_signal_scheme_has_no_slack(self):
        net, scheme = make(PowerPunchSignal())
        assert not scheme.slack1 and not scheme.slack2

    def test_pg_scheme_has_both_slacks(self):
        net, scheme = make(PowerPunchPG())
        assert scheme.slack1 and scheme.slack2

    def test_slack2_notice_holds_router(self):
        net, scheme = make(PowerPunchPG())
        for _ in range(20):
            net.step()
        assert scheme.controllers[9].is_off
        net.interfaces[9].early_notice(net.cycle)
        net.step()
        assert scheme.controllers[9].is_waking

    def test_slack2_notice_ignored_without_flag(self):
        net, scheme = make(PowerPunchSignal())
        for _ in range(20):
            net.step()
        assert scheme.controllers[9].is_off
        net.interfaces[9].early_notice(net.cycle)
        net.step()
        assert scheme.controllers[9].is_off


class TestInjectionPunchTiming:
    def test_slack1_punches_at_creation(self):
        """PowerPunch-PG wakes the injection path during the NI delay."""
        net, scheme = make(PowerPunchPG(wakeup_latency=8))
        for _ in range(30):
            net.step()
        p = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.step()  # punches generated the same cycle the NI accepts
        net.step()
        assert not scheme.controllers[0].is_off  # local woken immediately
        assert not scheme.controllers[1].is_off  # first hop punched

    def test_signal_scheme_waits_for_ni_completion(self):
        net, scheme = make(PowerPunchSignal(wakeup_latency=8))
        for _ in range(30):
            net.step()
        p = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.step()
        # During the NI pipeline nothing is punched yet (no slack 1):
        # the first-hop router is still asleep one cycle in.
        assert scheme.controllers[1].is_off

    def test_creation_time_block_accounting(self):
        net, scheme = make(PowerPunchPG(wakeup_latency=8))
        for _ in range(30):
            net.step()
        p = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        # Local router was off at the slack-1 wakeup-issue point.
        assert 0 in p.blocked_routers


class TestAvailabilityInterface:
    def test_nopg_always_available(self):
        net, scheme = make(NoPG())
        assert scheme.is_router_available(0)
        assert scheme.is_router_available_by(0, 10**9)

    def test_pg_schemes_report_off_routers(self):
        net, scheme = make(ConvOptPG())
        for _ in range(20):
            net.step()
        assert scheme.router_is_off(5)
        assert not scheme.is_router_available(5)
        assert scheme.currently_off() == 64

    def test_total_counters(self):
        net, scheme = make(ConvOptPG())
        for _ in range(20):
            net.step()
        assert scheme.total_off_cycles() > 0
        assert scheme.total_wake_events() == 0
