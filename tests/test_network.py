"""Integration tests for the NoC kernel (no power-gating)."""

import random

import pytest

from repro.noc import (
    Network,
    NoCConfig,
    VirtualNetwork,
    control_packet,
    data_packet,
)


def zero_load_latency(stages: int, hops: int) -> int:
    """Expected zero-load network latency of a single-flit packet.

    One cycle NI-to-router, ``hops`` times (Trouter + Tlink), then the
    destination router's pipeline up to ejection (``stages - 1``
    cycles: the hop into the ejection port needs no link traversal).
    """
    per_hop = stages + 1
    return 1 + hops * per_hop + (stages - 1)


class TestZeroLoadLatency:
    @pytest.mark.parametrize("stages", [3, 4])
    @pytest.mark.parametrize("src,dst", [(0, 7), (0, 63), (27, 28), (5, 40)])
    def test_single_flit_latency_formula(self, stages, src, dst):
        cfg = NoCConfig(width=8, height=8, router_stages=stages)
        net = Network(cfg)
        p = control_packet(src, dst, VirtualNetwork.REQUEST, 0)
        net.inject(p)
        net.run_until_drained(5000)
        hops = net.topology.hop_distance(src, dst)
        assert p.network_latency == zero_load_latency(stages, hops)

    def test_ni_latency_included_in_total(self):
        cfg = NoCConfig()
        net = Network(cfg)
        p = control_packet(0, 1, VirtualNetwork.REQUEST, 0)
        net.inject(p)
        net.run_until_drained(1000)
        assert p.injected_at == cfg.ni_latency
        assert p.total_latency == p.network_latency + cfg.ni_latency

    def test_data_packet_tail_serialization(self):
        # A 5-flit packet is strictly slower than a 1-flit packet.
        cfg = NoCConfig()
        net = Network(cfg)
        c = control_packet(0, 7, VirtualNetwork.RESPONSE, 0)
        net.inject(c)
        net.run_until_drained(1000)
        net2 = Network(cfg)
        d = data_packet(0, 7, VirtualNetwork.RESPONSE, 0)
        net2.inject(d)
        net2.run_until_drained(1000)
        assert d.network_latency >= c.network_latency + 4


class TestConservation:
    @pytest.mark.parametrize("rate", [0.02, 0.10])
    def test_all_injected_packets_delivered(self, rate):
        rng = random.Random(42)
        net = Network(NoCConfig(width=4, height=4))
        injected = 0
        for _ in range(2000):
            for n in range(16):
                if rng.random() < rate:
                    dst = rng.randrange(16)
                    if dst == n:
                        continue
                    vn = VirtualNetwork(rng.randrange(3))
                    size = 5 if vn == VirtualNetwork.RESPONSE else 1
                    pkt = control_packet(n, dst, vn, net.cycle) if size == 1 else (
                        data_packet(n, dst, vn, net.cycle)
                    )
                    net.inject(pkt)
                    injected += 1
            net.step()
        net.run_until_drained(50_000)
        assert net.stats.delivered == injected
        assert net.is_drained()

    def test_flit_conservation(self):
        rng = random.Random(7)
        net = Network(NoCConfig(width=4, height=4))
        flits = 0
        for _ in range(500):
            for n in range(16):
                if rng.random() < 0.05:
                    dst = rng.randrange(16)
                    if dst == n:
                        continue
                    p = data_packet(n, dst, VirtualNetwork.RESPONSE, net.cycle)
                    net.inject(p)
                    flits += p.size_flits
            net.step()
        net.run_until_drained(50_000)
        assert net.stats.delivered_flits == flits


class TestOrderingAndIntegrity:
    def test_same_flow_packets_delivered_in_order(self):
        """Two packets of one VN between the same pair stay ordered."""
        net = Network(NoCConfig())
        delivered = []
        net.add_delivery_listener(lambda p, c: delivered.append(p.packet_id))
        packets = [
            control_packet(2, 50, VirtualNetwork.REQUEST, 0) for _ in range(6)
        ]
        for p in packets:
            net.inject(p)
        net.run_until_drained(5000)
        assert delivered == [p.packet_id for p in packets]

    def test_hop_count_statistics(self):
        net = Network(NoCConfig())
        net.inject(control_packet(0, 63, VirtualNetwork.REQUEST, 0))
        net.run_until_drained(5000)
        assert net.stats.avg_hops == 14

    def test_deterministic_replay(self):
        def run():
            rng = random.Random(11)
            net = Network(NoCConfig(width=4, height=4))
            for _ in range(800):
                for n in range(16):
                    if rng.random() < 0.08:
                        dst = rng.randrange(16)
                        if dst != n:
                            net.inject(
                                control_packet(
                                    n, dst, VirtualNetwork(rng.randrange(3)), net.cycle
                                )
                            )
                net.step()
            net.run_until_drained(20_000)
            return (
                net.stats.delivered,
                net.stats.total_network_latency,
                net.stats.router_traversals,
                net.cycle,
            )

        assert run() == run()


class TestSaturation:
    def test_network_survives_heavy_load(self):
        """Near-saturation load must not deadlock or drop flits."""
        rng = random.Random(3)
        net = Network(NoCConfig(width=4, height=4))
        injected = 0
        for _ in range(1500):
            for n in range(16):
                if rng.random() < 0.35:
                    dst = rng.randrange(16)
                    if dst == n:
                        continue
                    net.inject(
                        control_packet(n, dst, VirtualNetwork(rng.randrange(3)), net.cycle)
                    )
                    injected += 1
            net.step()
        net.run_until_drained(100_000)
        assert net.stats.delivered == injected

    def test_throughput_reported(self):
        rng = random.Random(5)
        net = Network(NoCConfig(width=4, height=4))
        net.stats.measure_from = 0
        for _ in range(2000):
            for n in range(16):
                if rng.random() < 0.05:
                    dst = rng.randrange(16)
                    if dst != n:
                        net.inject(control_packet(n, dst, VirtualNetwork.REQUEST, net.cycle))
            net.step()
        net.run_until_drained(20_000)
        assert net.stats.throughput(16) == pytest.approx(
            net.stats.delivered_flits / (net.cycle * 16)
        )
