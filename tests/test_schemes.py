"""Integration tests for the four power-management schemes."""

import pytest

from repro.core import ConvOptPG, NoPG, PowerPunchPG, PowerPunchSignal
from repro.noc import Network, NoCConfig, VirtualNetwork, control_packet
from repro.traffic import SyntheticTraffic, measure


def make_network(scheme, stages=3, width=8):
    return Network(NoCConfig(width=width, height=width, router_stages=stages), scheme)


def run_idle(net, cycles):
    for _ in range(cycles):
        net.step()


class TestSleepBehaviour:
    def test_idle_network_powers_off_all_routers(self):
        scheme = ConvOptPG()
        net = make_network(scheme)
        run_idle(net, 20)
        assert scheme.currently_off() == 64

    def test_nopg_never_powers_off(self):
        net = make_network(NoPG())
        run_idle(net, 50)
        assert all(net.policy.is_router_available(r) for r in range(64))

    def test_busy_router_stays_on(self):
        scheme = ConvOptPG()
        net = make_network(scheme)
        # A continuous stream through row 0 keeps those routers on.
        for i in range(30):
            net.inject(control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle))
            net.step()
        assert not scheme.controllers[3].is_off

    def test_sleeping_router_blocks_and_wakes(self):
        scheme = ConvOptPG(wakeup_latency=8)
        net = make_network(scheme)
        run_idle(net, 20)
        assert scheme.controllers[4].is_off
        p = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(2000)
        assert p.delivered_at is not None
        assert len(p.blocked_routers) >= 1
        assert p.wakeup_wait_cycles > 0


class TestWakeupLatencyPenalty:
    """Quantitative checks of wakeup-latency exposure per scheme."""

    def cold_start_latency(self, scheme_cls, stages=3, **kw):
        scheme = scheme_cls(**kw) if kw else scheme_cls()
        net = make_network(scheme, stages=stages)
        run_idle(net, 30)  # everything asleep (except No-PG)
        p = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(5000)
        return p.total_latency

    def test_convopt_pays_much_more_than_nopg(self):
        nopg = self.cold_start_latency(NoPG)
        conv = self.cold_start_latency(ConvOptPG)
        assert conv > nopg + 20  # several wakeups along a 7-hop path

    def test_punch_signal_beats_convopt(self):
        conv = self.cold_start_latency(ConvOptPG)
        pps = self.cold_start_latency(PowerPunchSignal)
        assert pps < conv

    def test_punch_hides_transit_wakeups_completely(self):
        """After the injection wakeup, punch signals stay far enough
        ahead that no transit router ever stalls the packet."""
        scheme = PowerPunchSignal(wakeup_latency=8)
        net = make_network(scheme, stages=3)
        run_idle(net, 30)
        p = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(5000)
        # Only the local (injection) router may have stalled the packet.
        assert p.blocked_routers <= {0}
        assert p.wakeup_wait_cycles <= scheme.wakeup_latency

    def test_punch_signal_exposes_full_local_wakeup(self):
        scheme = PowerPunchSignal(wakeup_latency=8)
        net = make_network(scheme)
        run_idle(net, 30)
        p = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(5000)
        # No NI slack: the whole local wakeup latency is exposed.
        assert p.wakeup_wait_cycles >= scheme.wakeup_latency - 1

    def test_slack1_hides_ni_latency(self):
        pps = self.cold_start_latency(PowerPunchSignal)
        ppg = self.cold_start_latency(PowerPunchPG)
        # Slack 1 alone hides ~ni_latency cycles of the local wakeup.
        assert ppg <= pps - 2

    def test_slack2_hides_most_of_local_wakeup(self):
        scheme = PowerPunchPG(wakeup_latency=8)
        net = make_network(scheme)
        run_idle(net, 30)
        # Model the L2-access early notice 6 cycles before the message.
        net.interfaces[0].early_notice(net.cycle)
        run_idle(net, 6)
        p = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(5000)
        # 6 (slack 2) + 3 (slack 1 / NI latency) >= 8: the local wakeup
        # is fully hidden; only a cycle or two of first-hop residual
        # remains (the cold-start case the paper also retains).
        assert p.wakeup_wait_cycles <= 2

    @pytest.mark.parametrize("stages,twakeup,hidden", [(3, 8, True), (3, 10, False)])
    def test_punch_hop_slack_boundary(self, stages, twakeup, hidden):
        """3-hop punch hides up to 3*Trouter = 9 cycles on a 3-stage
        router (Sec. 4.1): Twakeup=8 fits, Twakeup=10 leaks (Fig. 13).

        Routers within punch_hops of the source get less signal lead at
        cold start, so the full-hiding guarantee is asserted on the
        mid-path routers (>= 4 hops from the source)."""
        scheme = PowerPunchSignal(wakeup_latency=twakeup, punch_hops=3)
        net = make_network(scheme, stages=stages)
        run_idle(net, 40)
        src, dst = 0, 7
        scheme.controllers[src].request_wakeup(net.cycle)
        run_idle(net, twakeup + 1)
        p = control_packet(src, dst, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(5000)
        mid_path_blocked = p.blocked_routers & {4, 5, 6, 7}
        if hidden:
            assert not mid_path_blocked
        else:
            assert mid_path_blocked


class TestSchemeOrdering:
    """The paper's headline ordering must hold under random traffic."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for cls in (NoPG, ConvOptPG, PowerPunchSignal, PowerPunchPG):
            net = Network(NoCConfig(), cls())
            traffic = SyntheticTraffic(net, "uniform_random", 0.01, seed=13)
            measure(net, traffic, warmup=500, measurement=3000)
            out[cls.name] = net.stats
        return out

    def test_latency_ordering(self, results):
        lat = {k: s.avg_total_latency for k, s in results.items()}
        assert lat["No-PG"] <= lat["PowerPunch-PG"] <= lat["PowerPunch-Signal"]
        assert lat["PowerPunch-Signal"] < lat["ConvOpt-PG"]

    def test_blocked_router_ordering(self, results):
        blocked = {k: s.avg_blocked_routers for k, s in results.items()}
        assert blocked["No-PG"] == 0
        assert blocked["PowerPunch-Signal"] < blocked["ConvOpt-PG"]
        assert blocked["PowerPunch-PG"] < blocked["ConvOpt-PG"]

    def test_wakeup_wait_ordering(self, results):
        wait = {k: s.avg_wakeup_wait for k, s in results.items()}
        assert wait["PowerPunch-PG"] < wait["PowerPunch-Signal"] < wait["ConvOpt-PG"]

    def test_all_packets_delivered_under_power_gating(self, results):
        for name, stats in results.items():
            assert stats.delivered > 0, name


class TestAvailabilityEta:
    def test_waking_router_usable_if_awake_by_arrival(self):
        scheme = ConvOptPG(wakeup_latency=8)
        net = make_network(scheme)
        run_idle(net, 20)
        ctl = scheme.controllers[1]
        assert ctl.is_off
        ctl.request_wakeup(net.cycle)
        # Wake completes at cycle+8; a flit SA-granted at cycle+5 lands
        # at cycle+8 and must be allowed.
        assert scheme.is_router_available_by(1, net.cycle + 8)
        assert not scheme.is_router_available_by(1, net.cycle + 7)


class TestFourStagePipeline:
    def test_punch_full_hiding_on_4stage(self):
        # 3 hops * Trouter(4) = 12 >= Twakeup 12 (Fig. 13 rightmost):
        # every router beyond the punch horizon is woken in time.
        scheme = PowerPunchSignal(wakeup_latency=12, punch_hops=3)
        net = make_network(scheme, stages=4)
        run_idle(net, 40)
        scheme.controllers[0].request_wakeup(net.cycle)
        run_idle(net, 13)
        p = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(5000)
        assert not (p.blocked_routers & {4, 5, 6, 7})
