"""Tests for synthetic traffic patterns and the Bernoulli generator."""

import random

import pytest

from repro.core import PowerPunchPG
from repro.noc import MeshTopology, Network, NoCConfig
from repro.traffic import PATTERNS, SyntheticTraffic, get_pattern, hotspot, measure
from repro.traffic.patterns import bit_complement, bit_reverse, transpose, uniform_random


@pytest.fixture
def topo():
    return MeshTopology(8, 8)


class TestPatterns:
    def test_transpose(self, topo):
        rng = random.Random(0)
        # (x=3, y=1) = node 11 -> (1, 3) = node 25.
        assert transpose(11, topo, rng) == 25
        assert transpose(0, topo, rng) == 0

    def test_bit_complement(self, topo):
        rng = random.Random(0)
        assert bit_complement(0, topo, rng) == 63
        assert bit_complement(27, topo, rng) == 36

    def test_bit_reverse(self, topo):
        rng = random.Random(0)
        # 6 bits: 000001 -> 100000.
        assert bit_reverse(1, topo, rng) == 32

    def test_uniform_random_never_self(self, topo):
        rng = random.Random(3)
        for src in range(64):
            for _ in range(20):
                assert uniform_random(src, topo, rng) != src

    def test_uniform_random_covers_destinations(self, topo):
        rng = random.Random(4)
        seen = {uniform_random(0, topo, rng) for _ in range(2000)}
        assert len(seen) == 63

    def test_hotspot_bias(self, topo):
        rng = random.Random(5)
        pattern = hotspot(hotspot_node=10, hotspot_fraction=0.5)
        hits = sum(1 for _ in range(1000) if pattern(3, topo, rng) == 10)
        assert hits > 350

    def test_get_pattern(self):
        assert get_pattern("transpose") is PATTERNS["transpose"]
        with pytest.raises(ValueError):
            get_pattern("nope")


class TestGenerator:
    def test_injection_rate_approximates_target(self):
        net = Network(NoCConfig())
        traffic = SyntheticTraffic(
            net, "uniform_random", 0.05, seed=2, slack2_lead=0
        )
        traffic.run(4000)
        traffic.drain()
        measured = net.stats.injected_flits / (4000 * 64)
        assert measured == pytest.approx(0.05, rel=0.15)

    def test_packet_rate_accounts_for_mixed_sizes(self):
        net = Network(NoCConfig())
        traffic = SyntheticTraffic(net, "uniform_random", 0.06, data_fraction=1.0)
        assert traffic.packet_rate == pytest.approx(0.06 / 5)
        traffic = SyntheticTraffic(net, "uniform_random", 0.06, data_fraction=0.0)
        assert traffic.packet_rate == pytest.approx(0.06)

    def test_invalid_rate_rejected(self):
        net = Network(NoCConfig())
        with pytest.raises(ValueError):
            SyntheticTraffic(net, "uniform_random", 1.5)

    def test_deterministic_given_seed(self):
        def run():
            net = Network(NoCConfig(width=4, height=4))
            traffic = SyntheticTraffic(net, "uniform_random", 0.05, seed=11)
            traffic.run(1500)
            traffic.drain()
            return (net.stats.delivered, net.stats.total_network_latency)

        assert run() == run()

    def test_slack2_defers_release_and_notifies(self):
        scheme = PowerPunchPG()
        net = Network(NoCConfig(width=4, height=4), scheme)
        traffic = SyntheticTraffic(
            net, "uniform_random", 0.05, seed=3, slack2_fraction=1.0, slack2_lead=6
        )
        traffic.step()
        # Everything drawn this cycle is deferred, nothing injected yet.
        assert net.stats.injected_packets == 0
        if traffic._deferred:
            release, _ = traffic._deferred[0]
            assert release == net.cycle + 6

    def test_drain_flushes_deferred(self):
        net = Network(NoCConfig(width=4, height=4))
        traffic = SyntheticTraffic(
            net, "uniform_random", 0.2, seed=4, slack2_fraction=1.0, slack2_lead=50
        )
        traffic.run(30)
        traffic.drain()
        assert not traffic._deferred
        assert net.is_drained()

    def test_measure_excludes_warmup(self):
        net = Network(NoCConfig(width=4, height=4))
        traffic = SyntheticTraffic(net, "uniform_random", 0.05, seed=5)
        stats = measure(net, traffic, warmup=500, measurement=1000)
        assert stats.measure_from == 500
        assert stats.delivered <= stats.injected_packets or stats.delivered > 0
