"""Tests for the ablation harness functions (fast configurations)."""


from repro.experiments.ablations import (
    bet_sweep,
    forewarning_ablation,
    punch_hops_sweep,
    slack_decomposition,
    timeout_sweep,
)


class TestAblationHarness:
    def test_punch_hops_sweep_shape(self):
        results = punch_hops_sweep(hops_values=(1, 3), measurement=1000)
        assert [h for h, _ in results] == [1, 3]
        assert results[1][1]["wait"] < results[0][1]["wait"]

    def test_timeout_sweep_off_fraction_monotone_ish(self):
        results = dict(timeout_sweep(timeouts=(2, 16), measurement=1000))
        # A 16-cycle timeout gates far less than a 2-cycle timeout.
        assert results[16]["off_fraction"] < results[2]["off_fraction"]

    def test_slack_decomposition_strictly_improves(self):
        waits = [res["wait"] for _n, res in slack_decomposition(measurement=1200)]
        assert waits[0] > waits[1] > waits[2]

    def test_forewarning_filter_helps_at_short_timeout(self):
        results = dict(forewarning_ablation(measurement=1200))
        assert results["forewarning on"]["wait"] < results["forewarning off"]["wait"]

    def test_bet_sweep_monotone_energy(self):
        results = bet_sweep(bet_values=(5, 40), measurement=800)
        assert results[0][1]["net_static"] < results[1][1]["net_static"]
        # Same simulation: identical timing across BET values.
        assert results[0][1]["latency"] == results[1][1]["latency"]
