"""Tests for the distributed campaign service.

Unit tests drive the orchestrator's scheduler directly over real TCP
connections with hand-rolled worker/client peers (no subprocesses), so
lease expiry, heartbeat lapse, work-stealing, dedup and the reconnect
penalty are each exercised in isolation with tight clocks.

The acceptance chaos scenario runs at the bottom: a three-worker local
cluster (real worker subprocesses), one SIGKILLed mid-campaign, must
finish with payloads bit-identical to a single-host run, serve a warm
rerun entirely from the shared store, and leave the lease/steal/
heartbeat record in the merged event log.
"""

import asyncio
import hashlib
import json
import os
import signal
import time

import pytest

from repro.campaign import Campaign, CellSpec, execute_cells
from repro.campaign.cache import code_salt, decode_payload, encode_payload
from repro.campaign.service import (
    FilesystemStore,
    LocalCluster,
    MemoryStore,
    Orchestrator,
    ProtocolError,
    merged_events,
    parse_address,
    run_hosted,
)
from repro.campaign.service import protocol


def specs(n=4):
    return [
        CellSpec.parsec("canneal", "No-PG", instructions=100, seed=seed)
        for seed in range(1, n + 1)
    ]


def sim_cells(seeds=(1, 2, 3), schemes=("No-PG", "PowerPunch-PG")):
    """Real (tiny) simulation cells for subprocess-backed tests."""
    return [
        CellSpec.synthetic(
            "uniform_random",
            0.02,
            scheme,
            warmup=30,
            measurement=80,
            drain=False,
            seed=seed,
        )
        for scheme in schemes
        for seed in seeds
    ]


def payload_hash(payload):
    doc = json.dumps(encode_payload(payload), sort_keys=True)
    return hashlib.sha256(doc.encode()).hexdigest()


# ----------------------------------------------------------------------
# Protocol and wire forms
# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:8765") == ("127.0.0.1", 8765)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        assert parse_address("example.com:1") == ("example.com", 1)
        for bad in ("example.com", "host:", "host:port", ""):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_recv_rejects_garbage_and_untyped(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"{not json}\n")
            with pytest.raises(ProtocolError):
                await protocol.recv(reader)
            reader.feed_data(b'{"no_type": 1}\n')
            with pytest.raises(ProtocolError):
                await protocol.recv(reader)
            reader.feed_data(b'{"type": "ok"}\n')
            assert (await protocol.recv(reader)) == {"type": "ok"}
            reader.feed_eof()
            assert (await protocol.recv(reader)) is None

        asyncio.run(scenario())

    def test_spec_canonical_round_trip_is_exact(self):
        for spec in sim_cells() + specs(2) + [
            CellSpec.reliability(5),
            CellSpec.analysis("table1", width=8, hops=3),
        ]:
            doc = json.loads(json.dumps(spec.canonical()))
            back = CellSpec.from_canonical(doc)
            assert back == spec
            assert back.cache_key("s") == spec.cache_key("s")


class TestStores:
    def test_backends_agree_bit_for_bit(self, tmp_path):
        spec = specs(1)[0]
        payload = {"seed": 1, "value": [1, 2, {"deep": True}]}
        mem = MemoryStore(salt="s1")
        fs = FilesystemStore(tmp_path / "store", salt="s1")
        mem.put(spec, payload)
        fs.put(spec, payload)
        assert mem.key_for(spec) == fs.key_for(spec)
        a = json.dumps(encode_payload(mem.get(spec)), sort_keys=True)
        b = json.dumps(encode_payload(fs.get(spec)), sort_keys=True)
        assert a == b
        assert mem.get(specs(2)[1]) is None


# ----------------------------------------------------------------------
# Hand-rolled peers for scheduler unit tests
# ----------------------------------------------------------------------
class FakeWorker:
    """A protocol-level worker under full test control."""

    def __init__(self, orch, name, capacity=1, salt=None):
        self.orch = orch
        self.name = name
        self.capacity = capacity
        self.salt = salt if salt is not None else orch.store.salt
        self.reader = None
        self.writer = None

    async def connect(self):
        self.reader, self.writer = await protocol.open_connection(
            "127.0.0.1", self.orch.port
        )
        await protocol.send(
            self.writer,
            {
                "type": "hello",
                "role": "worker",
                "host": self.name,
                "capacity": self.capacity,
                "salt": self.salt,
            },
        )
        return await self.recv()

    async def recv(self, timeout=5.0):
        return await asyncio.wait_for(protocol.recv(self.reader), timeout)

    async def send(self, message):
        await protocol.send(self.writer, message)

    async def request(self, slots=1):
        """Returns ``(leases, grant_end_message)``, skipping pokes."""
        await self.send({"type": "request", "slots": slots})
        leases = []
        while True:
            message = await self.recv()
            if message is None or message["type"] == "grant-end":
                return leases, message
            if message["type"] == "lease":
                leases.append(message)

    async def finish(self, lease, payload):
        await self.send(
            {
                "type": "result",
                "lease_id": lease["lease_id"],
                "key": lease["key"],
                "payload": encode_payload(payload),
            }
        )

    def close(self):
        if self.writer is not None:
            self.writer.close()


async def submit_cells(orch, cells, name="test", resume=True, timeout=10.0):
    """A protocol-level client: returns ``(payloads, done_message)``."""
    reader, writer = await protocol.open_connection("127.0.0.1", orch.port)
    try:
        await protocol.send(
            writer,
            {"type": "hello", "role": "client", "salt": orch.store.salt},
        )
        await protocol.send(
            writer,
            {
                "type": "submit",
                "name": name,
                "resume": resume,
                "cells": [spec.canonical() for spec in cells],
            },
        )
        payloads = [None] * len(cells)
        statuses = [None] * len(cells)
        while True:
            message = await asyncio.wait_for(protocol.recv(reader), timeout)
            assert message is not None, "service hung up mid-campaign"
            if message["type"] == "error":
                raise AssertionError(message["error"])
            if message["type"] == "done":
                return payloads, statuses, message
            index = message["index"]
            statuses[index] = message["status"]
            if "payload" in message:
                payloads[index] = decode_payload(message["payload"])
    finally:
        writer.close()


class TestOrchestratorScheduling:
    def _run(self, scenario, **orch_kwargs):
        async def main():
            orch = Orchestrator(MemoryStore(salt="s1"), **orch_kwargs)
            await orch.start()
            try:
                await asyncio.wait_for(scenario(orch), timeout=30.0)
            finally:
                await orch.stop()

        asyncio.run(main())

    def test_salt_mismatch_is_refused(self):
        async def scenario(orch):
            worker = FakeWorker(orch, "w0", salt="other-salt")
            reply = await worker.connect()
            assert reply["type"] == "error"
            assert "salt" in reply["error"]
            worker.close()

        self._run(scenario)

    def test_lease_result_delivery_and_warm_resubmit(self):
        cells = specs(3)

        async def scenario(orch):
            worker = FakeWorker(orch, "w0", capacity=4)
            welcome = await worker.connect()
            assert welcome["type"] == "welcome"
            client = asyncio.ensure_future(submit_cells(orch, cells))
            await asyncio.sleep(0.05)  # let the submit land
            leases, end = await worker.request(slots=4)
            assert end["granted"] == len(leases) == 3
            for lease in leases:
                spec = CellSpec.from_canonical(lease["spec"])
                await worker.finish(lease, {"seed": spec.seed})
            payloads, statuses, done = await client
            assert statuses == ["done"] * 3
            assert payloads == [{"seed": s.seed} for s in cells]
            assert done["executed"] == 3 and done["failed"] == 0
            # Second submit: all hits, no worker involvement at all.
            payloads2, statuses2, done2 = await submit_cells(orch, cells)
            assert statuses2 == ["hit"] * 3
            assert payloads2 == payloads
            assert done2["hits"] == 3 and done2["executed"] == 0
            worker.close()

        self._run(scenario)

    def test_failure_is_final_and_streamed(self):
        cells = specs(2)

        async def scenario(orch):
            worker = FakeWorker(orch, "w0", capacity=2)
            await worker.connect()
            client = asyncio.ensure_future(submit_cells(orch, cells))
            await asyncio.sleep(0.05)
            leases, _ = await worker.request(slots=2)
            await worker.finish(leases[0], {"ok": True})
            await worker.send(
                {
                    "type": "failure",
                    "lease_id": leases[1]["lease_id"],
                    "key": leases[1]["key"],
                    "error": "kaboom",
                    "classification": "deterministic",
                }
            )
            payloads, statuses, done = await client
            assert sorted(statuses) == ["done", "failed"]
            assert done["failed"] == 1
            assert orch.stats["failed"] == 1
            worker.close()

        self._run(scenario)

    def test_lease_expiry_requeues_and_late_result_is_deduped(self):
        cells = specs(1)

        async def scenario(orch):
            slow = FakeWorker(orch, "slow")
            await slow.connect()
            client = asyncio.ensure_future(submit_cells(orch, cells))
            await asyncio.sleep(0.05)
            leases, _ = await slow.request()
            assert len(leases) == 1
            # No heartbeat lists the lease, so it expires and requeues.
            await asyncio.sleep(0.8)
            assert orch.stats["expired"] >= 1
            assert orch.stats["requeues"] >= 1
            fast = FakeWorker(orch, "fast")
            await fast.connect()
            leases2, _ = await fast.request()
            assert len(leases2) == 1
            assert leases2[0]["key"] == leases[0]["key"]
            await fast.finish(leases2[0], {"winner": "fast"})
            payloads, _, _ = await client
            assert payloads == [{"winner": "fast"}]
            # The original host reports late: logged and discarded.
            await slow.finish(leases[0], {"winner": "slow"})
            await asyncio.sleep(0.1)
            assert orch.stats["duplicates"] == 1
            assert orch.store.get(cells[0]) == {"winner": "fast"}
            slow.close()
            fast.close()

        self._run(
            scenario,
            lease_duration=0.3,
            heartbeat_interval=0.2,
            miss_limit=1000,  # isolate lease expiry from heartbeat lapse
        )

    def test_invalid_payload_does_not_win(self):
        cells = specs(1)

        async def scenario(orch):
            worker = FakeWorker(orch, "w0")
            await worker.connect()
            client = asyncio.ensure_future(submit_cells(orch, cells))
            await asyncio.sleep(0.05)
            leases, _ = await worker.request()
            await worker.send(
                {
                    "type": "result",
                    "lease_id": leases[0]["lease_id"],
                    "key": leases[0]["key"],
                    "payload": {"bogus": "shape"},
                }
            )
            await asyncio.sleep(0.1)
            assert orch.stats["requeues"] >= 1
            assert orch.stats["completed"] == 0
            leases2, _ = await worker.request()
            await worker.finish(leases2[0], {"ok": 1})
            payloads, _, _ = await client
            assert payloads == [{"ok": 1}]
            worker.close()

        self._run(scenario)

    def test_heartbeat_lapse_kills_host_and_penalizes_reconnect(self):
        cells = specs(2)

        async def scenario(orch):
            worker = FakeWorker(orch, "w0")
            await worker.connect()
            client = asyncio.ensure_future(submit_cells(orch, cells))
            await asyncio.sleep(0.05)
            leases, _ = await worker.request()
            assert leases
            # Silence: miss_limit heartbeats lapse, the host is declared
            # dead and its leases requeue immediately.
            deadline = time.monotonic() + 5.0
            while orch.stats["dead_hosts"] < 1:
                assert time.monotonic() < deadline, "host never declared dead"
                await asyncio.sleep(0.05)
            assert orch.stats["requeues"] >= 1
            # The reconnect pays a doubled-per-death, capped penalty
            # before it is trusted with leases again.
            reborn = FakeWorker(orch, "w0")
            await reborn.connect()
            leases2, end = await reborn.request()
            assert leases2 == []
            assert end["retry_after"] > 0
            # Heartbeat through the penalty window (silence would get
            # this incarnation declared dead as well).
            wait_until = time.monotonic() + end["retry_after"] + 0.15
            seq = 0
            while time.monotonic() < wait_until:
                await reborn.send(
                    {"type": "heartbeat", "seq": seq, "running": []}
                )
                seq += 1
                await asyncio.sleep(0.05)
            leases3, _ = await reborn.request(slots=1)
            assert len(leases3) == 1
            await reborn.finish(leases3[0], {"seed": 1})
            leases4, _ = await reborn.request(slots=1)
            await reborn.finish(leases4[0], {"seed": 2})
            await client
            worker.close()
            reborn.close()

        self._run(
            scenario,
            lease_duration=30.0,
            heartbeat_interval=0.1,
            miss_limit=2,
        )

    def test_idle_host_steals_from_the_slowest_shard(self):
        cells = specs(8)

        async def scenario(orch):
            # Both hosts connect so the cells shard across them, but
            # only the thief ever requests work: every cell in the
            # victim's shard must be stolen for the campaign to finish.
            victim = FakeWorker(orch, "victim")
            thief = FakeWorker(orch, "thief", capacity=8)
            await victim.connect()
            await thief.connect()
            client = asyncio.ensure_future(submit_cells(orch, cells))
            await asyncio.sleep(0.05)
            done = 0
            while done < len(cells):
                leases, _ = await thief.request(slots=8)
                for lease in leases:
                    spec = CellSpec.from_canonical(lease["spec"])
                    await thief.finish(lease, {"seed": spec.seed})
                    done += 1
            payloads, _, _ = await client
            assert payloads == [{"seed": s.seed} for s in cells]
            victim_shard = sum(
                1 for c in orch.cells.values() if c.shard == "victim"
            )
            assert orch.stats["steals"] == victim_shard
            victim.close()
            thief.close()

        self._run(scenario)


# ----------------------------------------------------------------------
# Local cluster: real subprocess worker hosts
# ----------------------------------------------------------------------
class TestLocalCluster:
    def test_chaos_sigkill_worker_bit_identical_and_warm_rerun(self, tmp_path):
        """The acceptance scenario: 3 worker hosts, one SIGKILLed
        mid-campaign.  The campaign must finish, match a single-host
        run bit for bit, serve a warm rerun 100% from the store, and
        leave the full lease/steal/heartbeat record in the merged
        event log."""
        cells = sim_cells(seeds=(1, 2, 3, 4, 5, 6))
        single, _ = execute_cells(cells, workers=2)

        cache_dir = tmp_path / "store"
        log_path = tmp_path / "service.events.jsonl"
        killed = {}

        with LocalCluster(
            3,
            cache_dir=cache_dir,
            heartbeat_interval=0.25,
            miss_limit=2,
            lease_duration=10.0,
            log_path=log_path,
        ) as cluster:

            def on_result(index, spec, payload, was_hit):
                if not killed:
                    victim = cluster.workers[-1]
                    victim.send_signal(signal.SIGKILL)
                    victim.wait()
                    killed["pid"] = victim.pid

            from repro.campaign.service import execute_cells_remote

            payloads, stats = execute_cells_remote(
                cells, cluster.address, name="chaos", on_result=on_result
            )
            # Fast cells can finish inside the first heartbeat window;
            # keep the cluster up a beat so the survivors' heartbeats
            # land in the log before shutdown.
            time.sleep(3 * 0.25)

        assert killed, "the chaos kill never fired"
        assert stats.failed == 0
        assert all(p is not None for p in payloads)
        # Bit-identical to the undisturbed single-host run.
        assert [payload_hash(p) for p in payloads] == [
            payload_hash(p) for p in single
        ]

        # Warm rerun against the same store: 100% hits, no worker ever
        # sees a cell.
        warm_payloads, warm_stats = run_hosted(
            cells, "local:2", name="chaos-warm", cache_dir=cache_dir
        )
        assert warm_stats.hits == len(cells) and warm_stats.executed == 0
        assert [payload_hash(p) for p in warm_payloads] == [
            payload_hash(p) for p in single
        ]

        # The merged event stream tells the whole story, stamped with
        # per-host identity and sequence.
        events = merged_events(log_path)
        kinds = {e.get("event") for e in events}
        assert "lease" in kinds and "heartbeat" in kinds
        assert "submit" in kinds and "result" in kinds
        hosts_seen = {e.get("host") for e in events}
        assert "orchestrator" in hosts_seen
        for e in events:
            assert "seq" in e and "ts" in e
        # The SIGKILLed host was noticed and its work recovered.
        assert {"host-dead", "host-leave"} & kinds
        if any(e.get("event") == "requeue" for e in events):
            assert "steal" in kinds or "lease" in kinds

    def test_run_hosted_matches_engine_and_campaign_integration(self, tmp_path):
        cells = sim_cells(seeds=(1, 2))
        single, _ = execute_cells(cells)
        campaign = Campaign(name="svc-int", cells=tuple(cells))
        payloads = campaign.run(
            hosts="local:2", cache_dir=tmp_path / "store"
        )
        assert [payload_hash(p) for p in payloads] == [
            payload_hash(p) for p in single
        ]
        assert campaign.last_stats.executed == len(cells)
        # Warm rerun through the Campaign front door: pure hits.
        payloads2 = campaign.run(
            hosts="local:2", cache_dir=tmp_path / "store"
        )
        assert campaign.last_stats.hits == len(cells)
        assert campaign.last_stats.executed == 0
        assert [payload_hash(p) for p in payloads2] == [
            payload_hash(p) for p in single
        ]
