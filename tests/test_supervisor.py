"""Tests for the campaign supervision primitives.

Covers the retry policy (deterministic backoff/jitter), the
transient-vs-deterministic failure classifier, the quarantine ledger
(persistence, torn lines, structured reports with post-mortems), the
campaign checkpoint (salt guard, corrupt-file tolerance, payload
round-trip) and the pickling contract of the typed error hierarchy —
worker exceptions must survive the process-pool boundary without
breaking the pool.
"""

import json
import pickle

import pytest

from repro.campaign import (
    CampaignCheckpoint,
    CellSpec,
    CellTimeoutError,
    FailureReport,
    QuarantineLedger,
    RetryPolicy,
    WorkerCrashError,
    classify_attempts,
    encode_payload,
    error_signature,
)
from repro.noc.errors import (
    DeadlockError,
    DegradedNetworkError,
    InvariantViolation,
    SimulationError,
)
from repro.noc.invariants import PostMortem


class TestRetryPolicy:
    def test_first_attempt_has_no_delay(self):
        policy = RetryPolicy()
        assert policy.delay_before(1, "k") == 0.0

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_retries=10, backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.5
        )
        delays = [policy.delay_before(a, "k") for a in range(2, 8)]
        # Monotone non-decreasing until the cap, then flat (same jitter key
        # aside, the base saturates at the cap).
        bases = [min(0.5, 0.1 * 2.0 ** (a - 2)) for a in range(2, 8)]
        for delay, base in zip(delays, bases):
            assert base <= delay <= base * 1.5

    def test_jitter_is_deterministic_and_key_dependent(self):
        policy = RetryPolicy()
        assert policy.delay_before(2, "a") == policy.delay_before(2, "a")
        # Differing keys de-correlate (equality would mean no jitter at all
        # for this pair; these two differ for sha256).
        assert policy.delay_before(2, "a") != policy.delay_before(2, "b")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)


class TestClassifier:
    def test_signature_types(self):
        assert error_signature(WorkerCrashError("x")) == "worker-crash"
        assert error_signature(CellTimeoutError("x")) == "timeout"
        sig = error_signature(SimulationError("boom", cycle=4))
        assert sig.startswith("SimulationError:") and "boom" in sig

    def test_identical_twice_is_deterministic(self):
        sig = error_signature(SimulationError("boom"))
        assert classify_attempts([sig]) == "transient"
        assert classify_attempts([sig, sig]) == "deterministic"

    def test_differing_signatures_stay_transient(self):
        a = error_signature(SimulationError("one"))
        b = error_signature(SimulationError("two"))
        assert classify_attempts([a, b]) == "transient"
        # Only the *last two* matter: an old repeat does not condemn.
        assert classify_attempts([a, a, b]) == "transient"

    def test_repeated_crashes_are_deterministic(self):
        crash = error_signature(WorkerCrashError("died"))
        assert classify_attempts([crash, crash]) == "deterministic"


class TestErrorPickling:
    """Typed simulator errors must unpickle across the pool boundary —
    an exception that fails to unpickle breaks the whole pool."""

    def roundtrip(self, exc):
        return pickle.loads(pickle.dumps(exc))

    def test_simulation_error_with_context(self):
        err = self.roundtrip(SimulationError("boom", cycle=7, router=3))
        assert isinstance(err, SimulationError)
        assert err.cycle == 7 and err.router == 3
        assert "cycle=7" in str(err)

    def test_invariant_violation(self):
        err = self.roundtrip(
            InvariantViolation("flit-conservation", "lost one", cycle=9)
        )
        assert isinstance(err, InvariantViolation)
        assert err.invariant == "flit-conservation"
        assert err.cycle == 9

    def test_deadlock_error_keeps_post_mortem(self):
        pm = PostMortem(cycle=10, reason="watchdog")
        err = self.roundtrip(DeadlockError("stuck", post_mortem=pm, cycle=10))
        assert err.post_mortem is not None
        assert err.post_mortem.reason == "watchdog"
        assert "post-mortem" in str(err)

    def test_degraded_network_error(self):
        err = self.roundtrip(
            DegradedNetworkError(
                "router died", dead_routers=(5,), affected_packets=(1, 2), cycle=3
            )
        )
        assert err.dead_routers == (5,)
        assert err.affected_packets == (1, 2)


class TestQuarantineLedger:
    def report(self, key="k1", classification="deterministic"):
        spec = CellSpec.parsec("canneal", "No-PG")
        exc = SimulationError("boom", cycle=3)
        return FailureReport.from_failure(
            spec, key, exc, 2, [error_signature(exc)] * 2, classification
        )

    def test_quarantine_persists_across_instances(self, tmp_path):
        ledger = QuarantineLedger(tmp_path / "q")
        assert len(ledger) == 0
        ledger.quarantine(self.report("k1"))
        reopened = QuarantineLedger(tmp_path / "q")
        assert reopened.is_quarantined("k1")
        assert not reopened.is_quarantined("k2")
        entry = reopened.entry_for("k1")
        assert entry["classification"] == "deterministic"
        assert entry["attempts"] == 2

    def test_report_carries_spec_and_signatures(self, tmp_path):
        ledger = QuarantineLedger(tmp_path / "q")
        ledger.quarantine(self.report("k1"))
        doc = QuarantineLedger(tmp_path / "q").load_report("k1")
        assert doc["error_type"] == "SimulationError"
        assert len(doc["signatures"]) == 2
        assert doc["spec"]["workload"] == "canneal"

    def test_post_mortem_rendered_into_report(self, tmp_path):
        pm = PostMortem(cycle=10, reason="watchdog")
        exc = DeadlockError("stuck", post_mortem=pm, cycle=10)
        spec = CellSpec.parsec("canneal", "No-PG")
        report = FailureReport.from_failure(
            spec, "k2", exc, 2, ["s", "s"], "deterministic"
        )
        ledger = QuarantineLedger(tmp_path / "q")
        ledger.quarantine(report)
        doc = ledger.load_report("k2")
        assert doc["post_mortem"] is not None

    def test_torn_ledger_line_is_skipped(self, tmp_path):
        ledger = QuarantineLedger(tmp_path / "q")
        ledger.quarantine(self.report("k1"))
        with open(ledger.ledger_path, "a") as fh:
            fh.write('{"key": "k2", "trunc')  # torn mid-write
        reopened = QuarantineLedger(tmp_path / "q")
        assert reopened.is_quarantined("k1")
        assert not reopened.is_quarantined("k2")


class TestCampaignCheckpoint:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "c.checkpoint.json"
        ckpt = CampaignCheckpoint(path, salt="s1", name="unit")
        ckpt.record("k1", {"latency": 3.5})
        ckpt.flush()
        fresh = CampaignCheckpoint(path, salt="s1", name="unit")
        assert fresh.load() == 1
        assert fresh.get("k1") == {"latency": 3.5}
        assert fresh.get("k2") is None

    def test_wrong_salt_ignored_wholesale(self, tmp_path):
        path = tmp_path / "c.json"
        old = CampaignCheckpoint(path, salt="s1")
        old.record("k1", {"x": 1})
        old.flush()
        fresh = CampaignCheckpoint(path, salt="s2")
        assert fresh.load() == 0
        assert fresh.get("k1") is None

    def test_corrupt_file_ignored(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{ torn mid-write")
        ckpt = CampaignCheckpoint(path, salt="s1")
        assert ckpt.load() == 0

    def test_flush_is_noop_when_clean(self, tmp_path):
        path = tmp_path / "c.json"
        ckpt = CampaignCheckpoint(path, salt="s1")
        ckpt.flush()
        assert not path.exists()
        ckpt.record("k1", {"x": 1})
        ckpt.flush()
        doc = json.loads(path.read_text())
        assert doc["salt"] == "s1" and doc["completed"] == 1
        assert doc["entries"]["k1"] == encode_payload({"x": 1})
