"""Edge-case tests for the PG controller and scheme interactions."""

import pytest

from repro.core import ConvOptPG, PowerPunchPG, PowerPunchSignal
from repro.noc import Network, NoCConfig, VirtualNetwork, control_packet
from repro.powergate import PGState, PowerGateController


class TestControllerEdgeCases:
    def test_wakeup_request_during_waking_is_idempotent(self):
        ctl = PowerGateController(0, wakeup_latency=8, timeout=2)
        for c in range(2):
            ctl.step(c, True, False)
        assert ctl.is_off
        ctl.request_wakeup(2)
        for c in range(2, 6):
            ctl.request_wakeup(c)
            ctl.step(c, True, False)
        assert ctl.wake_events == 1
        assert ctl.wake_at == 10

    def test_active_request_only_resets_idle(self):
        ctl = PowerGateController(0, wakeup_latency=8, timeout=4)
        ctl.step(0, True, False)
        assert ctl.idle_cycles == 1
        ctl.request_wakeup(1)
        ctl.step(1, True, False)
        assert ctl.idle_cycles == 0
        assert ctl.state is PGState.ACTIVE

    def test_expectation_window_only_grows(self):
        ctl = PowerGateController(0)
        ctl.request_wakeup(0, expectation_window=20)
        ctl.request_wakeup(1, expectation_window=2)
        assert ctl.expect_until == 20

    def test_wakeup_latency_one(self):
        ctl = PowerGateController(0, wakeup_latency=1, timeout=2)
        for c in range(2):
            ctl.step(c, True, False)
        ctl.request_wakeup(2)
        ctl.step(2, True, False)
        assert ctl.is_waking
        ctl.step(3, True, False)
        assert ctl.is_available

    def test_invalid_wakeup_latency(self):
        with pytest.raises(ValueError):
            PowerGateController(0, wakeup_latency=0)

    def test_wakeup_on_sleep_decision_cycle_cancels_sleep(self):
        """Regression: a wakeup requested in the same cycle the sleep
        decision is made (e.g. an end-of-cycle punch after the FSM step)
        must revoke the sleep, not pay a full gate-off/wake round trip."""
        ctl = PowerGateController(0, wakeup_latency=8, timeout=2)
        for c in range(2):
            ctl.step(c, True, False)
        # step(1) decided to sleep: gated from cycle 2 onward.
        assert ctl.is_off
        assert ctl.sleep_events == 1
        ctl.request_wakeup(1)  # same cycle as the decision
        assert ctl.state is PGState.ACTIVE
        assert ctl.wake_events == 0
        assert ctl.sleep_events == 0
        assert ctl.cancelled_sleeps == 1
        assert ctl.last_sleep_cycle is None
        # The wakeup signal keeps the router busy for one cycle, then
        # the next idle stretch can still sleep normally.
        for c in range(2, 5):
            ctl.step(c, True, False)
        assert ctl.is_off

    def test_cancelled_sleep_keeps_off_period_stats_sane(self):
        """Regression: before the fix the cancelled sleep was charged a
        negative-length off period, corrupting mean_off_period."""
        ctl = PowerGateController(0, wakeup_latency=8, timeout=2)
        for c in range(2):
            ctl.step(c, True, False)
        ctl.request_wakeup(1)  # cancels (decision cycle)
        for c in range(2, 5):
            ctl.step(c, True, False)
        assert ctl.is_off  # gated from cycle 5 onward
        ctl.request_wakeup(13)  # genuine wake after 8 off cycles
        assert ctl.off_period_lengths_sum == 13 - 5
        assert ctl.mean_off_period() == pytest.approx(8.0)

    def test_wakeup_after_sleep_takes_effect_pays_full_latency(self):
        """One cycle later the supply is cut: no cancellation then."""
        ctl = PowerGateController(0, wakeup_latency=8, timeout=2)
        for c in range(2):
            ctl.step(c, True, False)
        ctl.step(2, True, False)
        ctl.request_wakeup(2)  # sleep took effect at cycle 2
        assert ctl.is_waking
        assert ctl.wake_at == 10
        assert ctl.cancelled_sleeps == 0


class TestSchemeEdgeCases:
    def test_zero_traffic_long_run_stable(self):
        scheme = PowerPunchPG()
        net = Network(NoCConfig(width=4, height=4), scheme)
        for _ in range(500):
            net.step()
        # All routers asleep, exactly one sleep event each, no wakes.
        assert scheme.currently_off() == 16
        assert scheme.total_wake_events() == 0
        assert all(c.sleep_events == 1 for c in scheme.controllers)

    def test_back_to_back_packets_single_wakeup(self):
        """A burst to one destination wakes each path router once."""
        scheme = PowerPunchSignal(wakeup_latency=8)
        net = Network(NoCConfig(width=4, height=4), scheme)
        for _ in range(25):
            net.step()
        for _ in range(5):
            net.inject(control_packet(0, 3, VirtualNetwork.REQUEST, net.cycle))
        net.run_until_drained(3000)
        for rid in (0, 1, 2, 3):
            assert scheme.controllers[rid].wake_events == 1, rid

    def test_wakeups_accurate_no_spurious_routers(self):
        """Punches only wake routers on the packet's path (accuracy
        claim of Sec. 4.3)."""
        scheme = PowerPunchPG(wakeup_latency=8)
        net = Network(NoCConfig(), scheme)
        for _ in range(30):
            net.step()
        net.inject(control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle))
        net.run_until_drained(3000)
        woken = {c.router_id for c in scheme.controllers if c.wake_events}
        assert woken <= set(range(8)), woken

    def test_convopt_wakes_spuriously_less_than_punch_horizon(self):
        """ConvOpt only ever wakes one hop ahead."""
        scheme = ConvOptPG(wakeup_latency=8)
        net = Network(NoCConfig(), scheme)
        for _ in range(25):
            net.step()
        net.inject(control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle))
        # Early in the transfer, routers >2 hops ahead must still be off.
        for _ in range(10):
            net.step()
        assert scheme.controllers[5].is_off
        assert scheme.controllers[7].is_off
        net.run_until_drained(3000)

    def test_punch_wakes_at_most_horizon_ahead(self):
        scheme = PowerPunchSignal(wakeup_latency=8, punch_hops=3)
        net = Network(NoCConfig(), scheme)
        for _ in range(30):
            net.step()
        net.inject(control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle))
        # At injection-check time the punch targets router_ahead(0,7,3)=3;
        # router 5+ must not be waking yet shortly after.
        for _ in range(6):
            net.step()
        assert scheme.controllers[5].is_off
        assert scheme.controllers[6].is_off
        net.run_until_drained(3000)
