"""Edge-case tests for the PG controller and scheme interactions."""

import pytest

from repro.core import ConvOptPG, PowerPunchPG, PowerPunchSignal
from repro.noc import Network, NoCConfig, VirtualNetwork, control_packet
from repro.powergate import PGState, PowerGateController


class TestControllerEdgeCases:
    def test_wakeup_request_during_waking_is_idempotent(self):
        ctl = PowerGateController(0, wakeup_latency=8, timeout=2)
        for c in range(2):
            ctl.step(c, True, False)
        assert ctl.is_off
        ctl.request_wakeup(2)
        for c in range(2, 6):
            ctl.request_wakeup(c)
            ctl.step(c, True, False)
        assert ctl.wake_events == 1
        assert ctl.wake_at == 10

    def test_active_request_only_resets_idle(self):
        ctl = PowerGateController(0, wakeup_latency=8, timeout=4)
        ctl.step(0, True, False)
        assert ctl.idle_cycles == 1
        ctl.request_wakeup(1)
        ctl.step(1, True, False)
        assert ctl.idle_cycles == 0
        assert ctl.state is PGState.ACTIVE

    def test_expectation_window_only_grows(self):
        ctl = PowerGateController(0)
        ctl.request_wakeup(0, expectation_window=20)
        ctl.request_wakeup(1, expectation_window=2)
        assert ctl.expect_until == 20

    def test_wakeup_latency_one(self):
        ctl = PowerGateController(0, wakeup_latency=1, timeout=2)
        for c in range(2):
            ctl.step(c, True, False)
        ctl.request_wakeup(2)
        ctl.step(2, True, False)
        assert ctl.is_waking
        ctl.step(3, True, False)
        assert ctl.is_available

    def test_invalid_wakeup_latency(self):
        with pytest.raises(ValueError):
            PowerGateController(0, wakeup_latency=0)


class TestSchemeEdgeCases:
    def test_zero_traffic_long_run_stable(self):
        scheme = PowerPunchPG()
        net = Network(NoCConfig(width=4, height=4), scheme)
        for _ in range(500):
            net.step()
        # All routers asleep, exactly one sleep event each, no wakes.
        assert scheme.currently_off() == 16
        assert scheme.total_wake_events() == 0
        assert all(c.sleep_events == 1 for c in scheme.controllers)

    def test_back_to_back_packets_single_wakeup(self):
        """A burst to one destination wakes each path router once."""
        scheme = PowerPunchSignal(wakeup_latency=8)
        net = Network(NoCConfig(width=4, height=4), scheme)
        for _ in range(25):
            net.step()
        for _ in range(5):
            net.inject(control_packet(0, 3, VirtualNetwork.REQUEST, net.cycle))
        net.run_until_drained(3000)
        for rid in (0, 1, 2, 3):
            assert scheme.controllers[rid].wake_events == 1, rid

    def test_wakeups_accurate_no_spurious_routers(self):
        """Punches only wake routers on the packet's path (accuracy
        claim of Sec. 4.3)."""
        scheme = PowerPunchPG(wakeup_latency=8)
        net = Network(NoCConfig(), scheme)
        for _ in range(30):
            net.step()
        net.inject(control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle))
        net.run_until_drained(3000)
        woken = {c.router_id for c in scheme.controllers if c.wake_events}
        assert woken <= set(range(8)), woken

    def test_convopt_wakes_spuriously_less_than_punch_horizon(self):
        """ConvOpt only ever wakes one hop ahead."""
        scheme = ConvOptPG(wakeup_latency=8)
        net = Network(NoCConfig(), scheme)
        for _ in range(25):
            net.step()
        net.inject(control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle))
        # Early in the transfer, routers >2 hops ahead must still be off.
        for _ in range(10):
            net.step()
        assert scheme.controllers[5].is_off
        assert scheme.controllers[7].is_off
        net.run_until_drained(3000)

    def test_punch_wakes_at_most_horizon_ahead(self):
        scheme = PowerPunchSignal(wakeup_latency=8, punch_hops=3)
        net = Network(NoCConfig(), scheme)
        for _ in range(30):
            net.step()
        net.inject(control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle))
        # At injection-check time the punch targets router_ahead(0,7,3)=3;
        # router 5+ must not be waking yet shortly after.
        for _ in range(6):
            net.step()
        assert scheme.controllers[5].is_off
        assert scheme.controllers[6].is_off
        net.run_until_drained(3000)
