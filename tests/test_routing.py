"""Tests for XY dimension-order routing."""

import pytest

from repro.noc import Direction, MeshTopology, XYRouting


@pytest.fixture
def routing():
    return XYRouting(MeshTopology(8, 8))


class TestOutputDirection:
    def test_x_first(self, routing):
        # From R26 toward R31: X+ first (paper Sec. 4.1 step 1 example).
        assert routing.output_direction(26, 31) == Direction.XPOS

    def test_y_after_x_aligned(self, routing):
        assert routing.output_direction(27, 59) == Direction.YPOS
        assert routing.output_direction(27, 3) == Direction.YNEG

    def test_negative_x(self, routing):
        assert routing.output_direction(27, 24) == Direction.XNEG

    def test_at_destination_is_local(self, routing):
        assert routing.output_direction(27, 27) == Direction.LOCAL

    def test_next_hop(self, routing):
        assert routing.next_hop(26, 31) == 27
        assert routing.next_hop(27, 27) is None


class TestPath:
    def test_path_x_then_y(self, routing):
        # 26 -> 29 -> then down to 45: X first, then Y.
        assert routing.path(26, 45) == [26, 27, 28, 29, 37, 45]

    def test_path_endpoints(self, routing):
        p = routing.path(0, 63)
        assert p[0] == 0 and p[-1] == 63
        assert len(p) == routing.hops(0, 63) + 1

    def test_path_is_minimal(self, routing):
        topo = routing.topology
        for src, dst in [(0, 63), (7, 56), (27, 36), (12, 12)]:
            assert routing.hops(src, dst) == topo.hop_distance(src, dst)

    def test_consecutive_path_nodes_adjacent(self, routing):
        p = routing.path(5, 58)
        for a, b in zip(p, p[1:]):
            assert routing.topology.hop_distance(a, b) == 1


class TestRouterAhead:
    def test_paper_example_r3_to_r7(self, routing):
        # Packet with source R0, destination R7, currently at R3:
        # the 3-hop targeted router is R6 (Sec. 4.1).
        assert routing.router_ahead(3, 7, 3) == 6

    def test_clamps_at_destination(self, routing):
        assert routing.router_ahead(26, 28, 3) == 28
        assert routing.router_ahead(26, 26, 3) == 26

    def test_follows_xy_turns(self, routing):
        # From 26 to destination 44: path 26,27,28,36,44 - 3 ahead is 36.
        assert routing.router_ahead(26, 44, 3) == 36

    def test_zero_hops_is_current(self, routing):
        assert routing.router_ahead(26, 44, 0) == 26

    def test_negative_hops_rejected(self, routing):
        with pytest.raises(ValueError):
            routing.router_ahead(26, 44, -1)


class TestTurnLegality:
    def test_y_to_x_turns_illegal(self):
        # Paper: "path R19->R27->R28 is not valid as Y+ to X+ turns are
        # illegal".  A packet moving Y+ arrives on the YNEG port.
        assert not XYRouting.is_turn_legal(Direction.YNEG, Direction.XPOS)
        assert not XYRouting.is_turn_legal(Direction.YNEG, Direction.XNEG)
        assert not XYRouting.is_turn_legal(Direction.YPOS, Direction.XPOS)

    def test_x_to_y_turns_legal(self):
        assert XYRouting.is_turn_legal(Direction.XNEG, Direction.YPOS)
        assert XYRouting.is_turn_legal(Direction.XPOS, Direction.YNEG)

    def test_straight_through_legal(self):
        assert XYRouting.is_turn_legal(Direction.XNEG, Direction.XPOS)
        assert XYRouting.is_turn_legal(Direction.YPOS, Direction.YNEG)

    def test_u_turns_illegal(self):
        assert not XYRouting.is_turn_legal(Direction.XNEG, Direction.XNEG)
        assert not XYRouting.is_turn_legal(Direction.YPOS, Direction.YPOS)

    def test_local_always_legal(self):
        for d in Direction:
            assert XYRouting.is_turn_legal(Direction.LOCAL, d)
            assert XYRouting.is_turn_legal(d, Direction.LOCAL)

    def test_all_generated_paths_respect_turn_rules(self, routing):
        topo = routing.topology
        for src in (0, 27, 63, 12):
            for dst in range(topo.num_nodes):
                if dst == src:
                    continue
                p = routing.path(src, dst)
                incoming = Direction.LOCAL
                for a, b in zip(p, p[1:]):
                    outgoing = topo.direction_to_neighbor(a, b)
                    assert XYRouting.is_turn_legal(incoming, outgoing)
                    incoming = outgoing.opposite


class TestUsesLink:
    def test_link_on_path(self, routing):
        assert routing.uses_link(26, 29, 27, 28)
        assert routing.uses_link(26, 29, 26, 27)

    def test_link_off_path(self, routing):
        assert not routing.uses_link(26, 29, 28, 27)  # wrong direction
        assert not routing.uses_link(26, 29, 27, 35)  # not on path
