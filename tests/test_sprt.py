"""Sequential model checking + shared statistics utilities.

Covers Wald's SPRT (thresholds, freezing, minimal decisive runs), its
fixed-sample Wilson counterpart, the hoisted ``wilson_interval``, the
reservoir quantile estimator (exactness below capacity, bounded
memory, bit-exact serialization), the NetworkStats p50/p95/p99
integration, and the acceptance cross-check: on the same seeded
reliability outcome stream the SPRT reaches the fixed-sample
campaign's verdict using fewer trials.
"""

import json

import pytest

from repro.campaign.runner import run_cell
from repro.campaign.spec import CellSpec
from repro.experiments.guarantees import report_sprt, run_sprt_reliability
from repro.experiments.reliability import (
    aggregate,
    reliability_campaign,
    wilson_interval as reliability_wilson,
)
from repro.guarantees import SPRT, wilson_verdict
from repro.noc import NoCConfig
from repro.stats_util import ReservoirQuantiles, wilson_interval


# ----------------------------------------------------------------------
# SPRT
# ----------------------------------------------------------------------
def test_sprt_rejects_bad_hypotheses():
    with pytest.raises(ValueError):
        SPRT(0.6, 0.9)  # p1 must be below p0
    with pytest.raises(ValueError):
        SPRT(0.9, 0.6, alpha=0.0)


def test_sprt_accepts_after_enough_successes():
    sprt = SPRT(0.9, 0.6)
    n = sprt.min_samples_to_accept
    for i in range(n - 1):
        assert sprt.update(True) is None
    assert sprt.update(True) == "accept"
    assert sprt.observations == n
    assert sprt.llr <= sprt.lower


def test_sprt_rejects_after_enough_failures():
    sprt = SPRT(0.9, 0.6)
    n = sprt.min_samples_to_reject
    for _ in range(n - 1):
        assert sprt.update(False) is None
    assert sprt.update(False) == "reject"
    assert sprt.observations == n


def test_sprt_freezes_after_verdict():
    sprt = SPRT(0.9, 0.6)
    while sprt.update(True) is None:
        pass
    decided_at = sprt.observations
    llr = sprt.llr
    # Overshooting observations must not move the decision.
    assert sprt.update(False) == "accept"
    assert sprt.observations == decided_at
    assert sprt.llr == llr


def test_sprt_update_many_stops_early():
    sprt = SPRT(0.9, 0.6)
    verdict = sprt.update_many([False] * 100)
    assert verdict == "reject"
    assert sprt.observations == sprt.min_samples_to_reject


def test_sprt_to_dict_round_trips_json():
    sprt = SPRT(0.9, 0.6, alpha=0.01, beta=0.02)
    sprt.update_many([True, True, False])
    dump = json.loads(json.dumps(sprt.to_dict()))
    assert dump["observations"] == 3
    assert dump["successes"] == 2
    assert dump["verdict"] is None


def test_wilson_verdict_brackets():
    assert wilson_verdict(98, 100, 0.9, 0.6) == "accept"
    assert wilson_verdict(10, 100, 0.9, 0.6) == "reject"
    assert wilson_verdict(8, 10, 0.9, 0.6) == "undecided"
    with pytest.raises(ValueError):
        wilson_verdict(5, 10, 0.6, 0.9)


# ----------------------------------------------------------------------
# Hoisted Wilson interval
# ----------------------------------------------------------------------
def test_wilson_interval_hoisted_identity():
    # reliability re-exports the shared implementation, not a copy.
    assert reliability_wilson is wilson_interval


def test_wilson_interval_basics():
    assert wilson_interval(0, 0) == (0.0, 1.0)
    lower, upper = wilson_interval(90, 100)
    assert 0.8 < lower < 0.9 < upper < 1.0
    with pytest.raises(ValueError):
        wilson_interval(11, 10)


# ----------------------------------------------------------------------
# Reservoir quantiles
# ----------------------------------------------------------------------
def test_reservoir_exact_below_capacity():
    reservoir = ReservoirQuantiles(capacity=512)
    for v in range(1, 101):
        reservoir.add(v)
    assert reservoir.quantile(0.5) == 50
    assert reservoir.p95 == 95
    assert reservoir.p99 == 99
    assert reservoir.quantile(1.0) == 100


def test_reservoir_bounds_memory():
    reservoir = ReservoirQuantiles(capacity=64)
    for v in range(10_000):
        reservoir.add(v)
    assert reservoir.count == 10_000
    assert len(reservoir.samples) == 64
    # Uniform stream: the sampled median should land mid-range.
    assert 2_000 < reservoir.p50 < 8_000


def test_reservoir_empty_and_invalid():
    reservoir = ReservoirQuantiles()
    assert reservoir.p50 is None
    with pytest.raises(ValueError):
        reservoir.quantile(1.5)
    with pytest.raises(ValueError):
        ReservoirQuantiles(capacity=0)


def test_reservoir_round_trip_continues_identically():
    a = ReservoirQuantiles(capacity=32, seed=99)
    for v in range(500):
        a.add(v)
    b = ReservoirQuantiles.from_dict(json.loads(json.dumps(a.to_dict())))
    assert a == b
    # A restored reservoir replays the original's future exactly.
    for v in range(500, 900):
        a.add(v)
        b.add(v)
    assert a.to_dict() == b.to_dict()


def test_reservoir_from_dict_validates_capacity():
    with pytest.raises(ValueError):
        ReservoirQuantiles.from_dict(
            {"capacity": 2, "seed": 1, "count": 3, "state": 1, "samples": [1, 2, 3]}
        )


def test_network_stats_quantiles():
    cell = CellSpec.synthetic(
        "uniform_random",
        0.05,
        "PowerPunch-PG",
        warmup=150,
        measurement=300,
        seed=7,
        config=NoCConfig(width=4, height=4),
    )
    record = run_cell(cell)
    # The RunRecord path exercises the same stats object; rebuild one
    # directly for the quantile properties.
    from repro.core import PowerPunchPG
    from repro.noc import Network
    from repro.traffic import SyntheticTraffic

    network = Network(NoCConfig(width=4, height=4), PowerPunchPG())
    traffic = SyntheticTraffic(network, "uniform_random", 0.05, seed=7)
    traffic.run(150)
    network.stats.measure_from = network.cycle
    traffic.run(300)
    traffic.drain()
    stats = network.stats
    assert stats.quantiles.count == stats.delivered
    assert stats.p50_latency <= stats.p95_latency <= stats.p99_latency
    # The golden-compared counter contract is untouched: no reservoir
    # key in as_dict, and the round-trip still holds.
    dump = stats.as_dict()
    assert "quantiles" not in dump
    assert type(stats).from_dict(dump).as_dict() == dump
    assert record.avg_packet_latency > 0


# ----------------------------------------------------------------------
# SPRT vs fixed-sample campaign (acceptance cross-check)
# ----------------------------------------------------------------------
_TRIAL_KWARGS = dict(
    pattern="uniform_random",
    injection_rate=0.02,
    scheme="PowerPunch-PG",
    width=4,
    height=4,
    max_faults=1,
    horizon=600,
    warmup=200,
    measurement=600,
    watchdog=50_000,
)


def test_sprt_matches_wilson_with_fewer_samples():
    samples = 14
    campaign = reliability_campaign(samples, base_seed=1, **_TRIAL_KWARGS)
    outcomes = [run_cell(cell) for cell in campaign.cells]
    estimate = aggregate(outcomes)
    clean = estimate["clean_trials"]
    # Hypotheses bracketing the observed operating point so the fixed
    # campaign is decisive on this seeded reference.
    p0, p1 = 0.55, 0.15
    fixed = wilson_verdict(clean, samples, p0, p1)
    assert fixed in ("accept", "reject")
    sprt = SPRT(p0, p1)
    sprt.update_many(bool(o["delivered_all"]) for o in outcomes)
    assert sprt.verdict == fixed
    assert sprt.observations < samples


def test_run_sprt_reliability_driver():
    estimate = run_sprt_reliability(
        base_seed=1,
        max_samples=14,
        p0=0.55,
        p1=0.15,
        batch=4,
        **_TRIAL_KWARGS,
    )
    assert estimate["verdict"] in ("accept", "reject")
    assert estimate["samples_used"] == estimate["sprt"]["observations"]
    assert estimate["samples_used"] <= estimate["samples_declared"] <= 14
    assert len(estimate["trial_outcomes"]) == estimate["samples_used"]
    # Deterministic and JSON-clean (the CI job diffs two runs).
    again = run_sprt_reliability(
        base_seed=1,
        max_samples=14,
        p0=0.55,
        p1=0.15,
        batch=4,
        **_TRIAL_KWARGS,
    )
    assert json.dumps(estimate, sort_keys=True) == json.dumps(again, sort_keys=True)
    assert "verdict" in report_sprt(estimate)
