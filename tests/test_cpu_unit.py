"""Unit tests for the in-order core model."""


from repro.system.cpu import Core
from repro.system.memtrace import AccessStream, StreamProfile


class ScriptedStream:
    """Deterministic access script standing in for AccessStream."""

    def __init__(self, script):
        self.script = list(script)
        self.profile = StreamProfile(overlap_fraction=0.0)
        import random

        self.rng = random.Random(0)

    def next_access(self):
        if self.script:
            return self.script.pop(0)
        return (10_000, 0, False)


class FakeL1:
    """L1 stub with scripted hit/miss behavior."""

    def __init__(self, miss_blocks=()):
        self.miss_blocks = set(miss_blocks)
        self.on_complete = None
        self.accepts = True
        self.accesses = []

    def can_accept(self, block):
        return self.accepts

    def access(self, block, is_write, cycle):
        self.accesses.append((block, is_write, cycle))
        return block not in self.miss_blocks

    def complete(self, block, cycle):
        self.on_complete(block, cycle)


class TestComputePhase:
    def test_retires_one_instruction_per_cycle(self):
        stream = ScriptedStream([(5, 1, False)])
        l1 = FakeL1()
        core = Core(0, l1, stream, quota=4)
        for cycle in range(4):
            core.step(cycle)
        assert core.retired == 4
        assert core.done

    def test_memory_op_issued_after_gap(self):
        stream = ScriptedStream([(2, 42, False), (100, 0, False)])
        l1 = FakeL1()
        core = Core(0, l1, stream, quota=10)
        for cycle in range(5):
            core.step(cycle)
        assert l1.accesses and l1.accesses[0][0] == 42
        assert l1.accesses[0][2] == 2  # two compute cycles first


class TestMissBehaviour:
    def test_blocking_miss_stalls_until_completion(self):
        stream = ScriptedStream([(0, 7, True), (100, 0, False)])
        l1 = FakeL1(miss_blocks={7})
        core = Core(0, l1, stream, quota=10)
        core.step(0)
        assert core.is_stalled
        for cycle in range(1, 6):
            core.step(cycle)
        assert core.stall_cycles == 5
        assert core.retired == 0
        l1.complete(7, 6)
        assert not core.is_stalled
        assert core.retired == 1

    def test_unrelated_completion_ignored(self):
        stream = ScriptedStream([(0, 7, False), (100, 0, False)])
        l1 = FakeL1(miss_blocks={7})
        core = Core(0, l1, stream, quota=10)
        core.step(0)
        l1.complete(99, 1)
        assert core.is_stalled

    def test_structural_stall_retries_same_access(self):
        stream = ScriptedStream([(0, 7, False), (100, 0, False)])
        l1 = FakeL1()
        l1.accepts = False
        core = Core(0, l1, stream, quota=10)
        core.step(0)
        core.step(1)
        assert not l1.accesses  # nothing issued yet
        assert core.stall_cycles == 2
        l1.accepts = True
        core.step(2)
        assert l1.accesses == [(7, False, 2)]

    def test_done_core_stops_stepping(self):
        stream = ScriptedStream([(1, 1, False)])
        l1 = FakeL1()
        core = Core(0, l1, stream, quota=1)
        core.step(0)
        assert core.done
        retired = core.retired
        core.step(1)
        assert core.retired == retired


class TestOverlap:
    def test_overlapped_miss_does_not_stall(self):
        profile = StreamProfile(overlap_fraction=1.0)
        stream = AccessStream(0, profile, seed=1)
        l1 = FakeL1()
        # Every access misses.
        l1.access = lambda block, w, cycle: (l1.accesses.append(block), False)[1]
        core = Core(0, l1, stream, quota=50)
        for cycle in range(400):
            core.step(cycle)
            if core.done:
                break
        assert core.done
        assert core.stall_cycles == 0
