"""Unit tests for the L1 controller with a scripted message sink."""

import pytest

from repro.system.l1 import L1Controller, L1Line
from repro.system.messages import CoherenceMessage, MessageType

HOME = 9
BLOCK = 42


class Sink:
    def __init__(self):
        self.sent = []

    def __call__(self, msg, dest, cycle):
        self.sent.append((msg, dest, cycle))

    def of_type(self, mtype):
        return [(m, d) for m, d, _ in self.sent if m.mtype is mtype]

    def clear(self):
        self.sent.clear()


@pytest.fixture
def l1():
    sink = Sink()
    ctl = L1Controller(node=3, home_of=lambda b: HOME, send=sink)
    ctl.sink = sink
    ctl.completed = []
    ctl.on_complete = lambda b, c: ctl.completed.append((b, c))
    return ctl


def data(block=BLOCK, version=0, acks=0, exclusive=False, sender=HOME):
    return CoherenceMessage(
        MessageType.DATA_E if exclusive else MessageType.DATA,
        block,
        sender=sender,
        requester=3,
        ack_count=acks,
        version=version,
    )


class TestLoads:
    def test_load_miss_sends_gets(self, l1):
        assert l1.access(BLOCK, False, 0) is False
        ((msg, dest),) = l1.sink.of_type(MessageType.GETS)
        assert dest == HOME
        assert l1.state_of(BLOCK) == "IS_D"

    def test_data_completes_shared(self, l1):
        l1.access(BLOCK, False, 0)
        l1.handle(data(version=4), 5)
        assert l1.state_of(BLOCK) == "S"
        assert l1.completed == [(BLOCK, 5)]
        assert l1.cache.lookup(BLOCK).version == 4

    def test_data_exclusive_completes_e(self, l1):
        l1.access(BLOCK, False, 0)
        l1.handle(data(exclusive=True), 5)
        assert l1.state_of(BLOCK) == "E"

    def test_inv_racing_gets_uses_data_once(self, l1):
        l1.access(BLOCK, False, 0)
        l1.handle(
            CoherenceMessage(MessageType.INV, BLOCK, sender=HOME, requester=7), 2
        )
        assert l1.state_of(BLOCK) == "IS_D_I"
        ((ack, dest),) = l1.sink.of_type(MessageType.INV_ACK)
        assert dest == 7
        l1.handle(data(), 5)
        assert l1.completed == [(BLOCK, 5)]
        assert l1.state_of(BLOCK) == "I"


class TestStores:
    def test_store_miss_waits_for_data_and_acks(self, l1):
        l1.access(BLOCK, True, 0)
        assert l1.state_of(BLOCK) == "IM_AD"
        l1.handle(data(version=2, acks=2), 3)
        assert l1.completed == []  # acks outstanding
        inv_ack = CoherenceMessage(MessageType.INV_ACK, BLOCK, sender=5, requester=3)
        l1.handle(inv_ack, 4)
        l1.handle(
            CoherenceMessage(MessageType.INV_ACK, BLOCK, sender=6, requester=3), 5
        )
        assert l1.completed == [(BLOCK, 5)]
        line = l1.cache.lookup(BLOCK)
        assert line.state == "M" and line.version == 3

    def test_acks_may_arrive_before_data(self, l1):
        l1.access(BLOCK, True, 0)
        l1.handle(
            CoherenceMessage(MessageType.INV_ACK, BLOCK, sender=5, requester=3), 2
        )
        l1.handle(data(version=1, acks=1), 4)
        assert l1.completed == [(BLOCK, 4)]

    def test_upgrade_uses_own_version(self, l1):
        l1.cache.insert(BLOCK, L1Line("S", 6))
        assert l1.access(BLOCK, True, 0) is False
        assert l1.state_of(BLOCK) == "SM_AD"
        ack_count = CoherenceMessage(
            MessageType.ACK_COUNT, BLOCK, sender=HOME, requester=3, ack_count=0
        )
        l1.handle(ack_count, 3)
        line = l1.cache.lookup(BLOCK)
        assert line.state == "M" and line.version == 7

    def test_inv_during_upgrade_demands_data(self, l1):
        l1.cache.insert(BLOCK, L1Line("S", 6))
        l1.access(BLOCK, True, 0)
        l1.handle(
            CoherenceMessage(MessageType.INV, BLOCK, sender=HOME, requester=8), 2
        )
        assert l1.state_of(BLOCK) == "IM_AD"
        l1.handle(data(version=9, acks=0), 4)
        assert l1.cache.lookup(BLOCK).version == 10


class TestForwards:
    def test_fwd_gets_downgrades_and_copies_home(self, l1):
        l1.cache.insert(BLOCK, L1Line("M", 5))
        fwd = CoherenceMessage(MessageType.FWD_GETS, BLOCK, sender=HOME, requester=7)
        l1.handle(fwd, 0)
        ((msg, dest),) = l1.sink.of_type(MessageType.DATA)
        assert dest == 7 and msg.version == 5
        ((copy, chome),) = l1.sink.of_type(MessageType.OWNER_DATA)
        assert chome == HOME
        assert l1.state_of(BLOCK) == "S"

    def test_fwd_getm_invalidates(self, l1):
        l1.cache.insert(BLOCK, L1Line("M", 5))
        fwd = CoherenceMessage(MessageType.FWD_GETM, BLOCK, sender=HOME, requester=7)
        l1.handle(fwd, 0)
        assert l1.state_of(BLOCK) == "I"
        assert not l1.sink.of_type(MessageType.OWNER_DATA)

    def test_fwd_to_transient_is_deferred(self, l1):
        l1.access(BLOCK, True, 0)
        fwd = CoherenceMessage(MessageType.FWD_GETM, BLOCK, sender=HOME, requester=7)
        l1.handle(fwd, 1)
        assert l1.mshrs[BLOCK].deferred == [fwd]
        l1.sink.clear()
        l1.handle(data(version=1, acks=0), 4)
        # Completion services the deferred forward: data to node 7.
        ((msg, dest),) = l1.sink.of_type(MessageType.DATA)
        assert dest == 7 and msg.version == 2
        assert l1.state_of(BLOCK) == "I"

    def test_stale_fwd_nacked_with_kind(self, l1):
        fwd = CoherenceMessage(MessageType.FWD_GETM, BLOCK, sender=HOME, requester=7)
        l1.handle(fwd, 0)
        ((nack, dest),) = l1.sink.of_type(MessageType.FWD_NACK)
        assert dest == HOME and nack.ack_count == 1
        fwd2 = CoherenceMessage(MessageType.FWD_GETS, BLOCK, sender=HOME, requester=7)
        l1.handle(fwd2, 1)
        nacks = l1.sink.of_type(MessageType.FWD_NACK)
        assert nacks[-1][0].ack_count == 0


class TestWritebackRaces:
    def evict_dirty(self, l1):
        l1.cache.insert(BLOCK, L1Line("M", 5))
        line = l1.cache.remove(BLOCK)
        l1.cache.insert(BLOCK, line)  # put back; use _evict directly
        l1._evict(BLOCK, line, 0)

    def test_putm_creates_wb_buffer(self, l1):
        self.evict_dirty(l1)
        assert l1.state_of(BLOCK) == "MI_WB"
        assert l1.sink.of_type(MessageType.PUTM)
        l1.handle(
            CoherenceMessage(MessageType.WB_ACK, BLOCK, sender=HOME, requester=3), 5
        )
        assert l1.state_of(BLOCK) == "I"

    def test_fwd_getm_served_from_wb_buffer(self, l1):
        self.evict_dirty(l1)
        l1.sink.clear()
        fwd = CoherenceMessage(MessageType.FWD_GETM, BLOCK, sender=HOME, requester=7)
        l1.handle(fwd, 1)
        ((msg, dest),) = l1.sink.of_type(MessageType.DATA)
        assert dest == 7 and msg.version == 5
        assert l1.wb_buffers[BLOCK].forwarded

    def test_fwd_gets_during_wb_stays_silent(self, l1):
        # The home completes the GetS from our in-flight PutM; replying
        # here too would double-serve the requester.
        self.evict_dirty(l1)
        l1.sink.clear()
        fwd = CoherenceMessage(MessageType.FWD_GETS, BLOCK, sender=HOME, requester=7)
        l1.handle(fwd, 1)
        assert not l1.sink.sent

    def test_block_in_wb_not_accepted_for_new_miss(self, l1):
        self.evict_dirty(l1)
        assert not l1.can_accept(BLOCK)
