"""Tests for coherence message definitions and VN mapping."""


from repro.noc import VirtualNetwork
from repro.system import CoherenceMessage, MessageType


class TestVNMapping:
    def test_requests_on_vn0(self):
        for mtype in (
            MessageType.GETS,
            MessageType.GETM,
            MessageType.PUTS,
            MessageType.PUTM,
            MessageType.MEM_READ,
            MessageType.MEM_WRITE,
        ):
            assert mtype.vnet == VirtualNetwork.REQUEST

    def test_forwards_on_vn1(self):
        for mtype in (MessageType.FWD_GETS, MessageType.FWD_GETM, MessageType.INV):
            assert mtype.vnet == VirtualNetwork.FORWARD

    def test_responses_on_vn2(self):
        for mtype in (
            MessageType.DATA,
            MessageType.DATA_E,
            MessageType.OWNER_DATA,
            MessageType.ACK_COUNT,
            MessageType.INV_ACK,
            MessageType.WB_ACK,
            MessageType.FWD_NACK,
            MessageType.MEM_DATA,
        ):
            assert mtype.vnet == VirtualNetwork.RESPONSE

    def test_every_type_mapped(self):
        for mtype in MessageType:
            assert mtype.vnet in VirtualNetwork


class TestSizes:
    def test_data_messages_are_five_flits(self):
        for mtype in (
            MessageType.DATA,
            MessageType.DATA_E,
            MessageType.OWNER_DATA,
            MessageType.MEM_DATA,
            MessageType.PUTM,
            MessageType.MEM_WRITE,
        ):
            msg = CoherenceMessage(mtype, 1, sender=0)
            assert msg.size_flits == 5, mtype

    def test_control_messages_are_one_flit(self):
        for mtype in (
            MessageType.GETS,
            MessageType.INV,
            MessageType.INV_ACK,
            MessageType.WB_ACK,
        ):
            msg = CoherenceMessage(mtype, 1, sender=0)
            assert msg.size_flits == 1, mtype


class TestPacketConversion:
    def test_to_packet_carries_message(self):
        msg = CoherenceMessage(MessageType.GETS, 42, sender=3, requester=3)
        packet = msg.to_packet(source=3, destination=10, cycle=100)
        assert packet.payload is msg
        assert packet.source == 3
        assert packet.destination == 10
        assert packet.vnet == VirtualNetwork.REQUEST
        assert packet.size_flits == 1
        assert packet.created_at == 100
