"""Unit tests for the directory controller with a scripted message sink."""

import pytest

from repro.system.directory import DirectoryController, L2Line
from repro.system.memctrl import Memory, MemoryController
from repro.system.messages import CoherenceMessage, MessageType


class Sink:
    def __init__(self):
        self.sent = []

    def __call__(self, msg, dest, cycle):
        self.sent.append((msg, dest, cycle))

    def of_type(self, mtype):
        return [(m, d) for m, d, _ in self.sent if m.mtype is mtype]

    def clear(self):
        self.sent.clear()


@pytest.fixture
def home():
    sink = Sink()
    directory = DirectoryController(node=1, mc_of=lambda b: 0, send=sink)
    directory.sink = sink
    return directory


def gets(block, requester):
    return CoherenceMessage(MessageType.GETS, block, sender=requester, requester=requester)


def getm(block, requester):
    return CoherenceMessage(MessageType.GETM, block, sender=requester, requester=requester)


BLOCK = 77


class TestGetS:
    def test_miss_goes_to_memory(self, home):
        home.handle(gets(BLOCK, 4), cycle=0)
        assert home.sink.of_type(MessageType.MEM_READ)
        assert home.entry(BLOCK).busy
        assert home.memory_fetches == 1

    def test_hit_with_no_sharers_grants_exclusive(self, home):
        home.l2.insert(BLOCK, L2Line(version=3))
        home.handle(gets(BLOCK, 4), cycle=0)
        ((msg, dest),) = home.sink.of_type(MessageType.DATA_E)
        assert dest == 4 and msg.version == 3
        assert home.entry(BLOCK).owner == 4

    def test_hit_with_sharers_grants_shared(self, home):
        home.l2.insert(BLOCK, L2Line(version=3))
        home.entry(BLOCK).sharers = {2}
        home.handle(gets(BLOCK, 4), cycle=0)
        ((msg, dest),) = home.sink.of_type(MessageType.DATA)
        assert dest == 4
        assert home.entry(BLOCK).sharers == {2, 4}

    def test_owner_forwarded_and_blocking(self, home):
        home.entry(BLOCK).owner = 9
        home.handle(gets(BLOCK, 4), cycle=0)
        ((msg, dest),) = home.sink.of_type(MessageType.FWD_GETS)
        assert dest == 9 and msg.requester == 4
        assert home.entry(BLOCK).busy
        # A second request queues behind.
        home.handle(getm(BLOCK, 5), cycle=1)
        assert len(home.entry(BLOCK).waiting) == 1

    def test_owner_data_completes_gets(self, home):
        home.entry(BLOCK).owner = 9
        home.handle(gets(BLOCK, 4), cycle=0)
        home.sink.clear()
        home.handle(
            CoherenceMessage(
                MessageType.OWNER_DATA, BLOCK, sender=9, requester=4, version=5
            ),
            cycle=10,
        )
        entry = home.entry(BLOCK)
        assert not entry.busy
        assert entry.owner is None
        assert entry.sharers == {9, 4}
        assert home.l2.lookup(BLOCK).version == 5
        assert home.l2.lookup(BLOCK).dirty


class TestGetM:
    def test_sharers_invalidated_with_ack_count(self, home):
        home.l2.insert(BLOCK, L2Line(version=2))
        home.entry(BLOCK).sharers = {2, 3, 4}
        home.handle(getm(BLOCK, 4), cycle=0)
        invs = home.sink.of_type(MessageType.INV)
        assert {d for _m, d in invs} == {2, 3}
        ((ack, dest),) = home.sink.of_type(MessageType.ACK_COUNT)
        assert dest == 4 and ack.ack_count == 2
        entry = home.entry(BLOCK)
        assert entry.owner == 4 and entry.sharers == set()

    def test_non_sharer_write_gets_data_plus_acks(self, home):
        home.l2.insert(BLOCK, L2Line(version=2))
        home.entry(BLOCK).sharers = {2, 3}
        home.handle(getm(BLOCK, 7), cycle=0)
        ((msg, dest),) = home.sink.of_type(MessageType.DATA)
        assert dest == 7 and msg.ack_count == 2

    def test_ownership_handoff_nonblocking(self, home):
        home.entry(BLOCK).owner = 9
        home.handle(getm(BLOCK, 4), cycle=0)
        ((msg, dest),) = home.sink.of_type(MessageType.FWD_GETM)
        assert dest == 9 and msg.requester == 4
        entry = home.entry(BLOCK)
        assert entry.owner == 4
        assert not entry.busy


class TestWriteback:
    def test_putm_from_owner_installs(self, home):
        home.entry(BLOCK).owner = 9
        home.handle(
            CoherenceMessage(
                MessageType.PUTM, BLOCK, sender=9, requester=9, version=7
            ),
            cycle=0,
        )
        assert home.l2.lookup(BLOCK).version == 7
        assert home.entry(BLOCK).owner is None
        assert home.sink.of_type(MessageType.WB_ACK)

    def test_stale_putm_only_acked(self, home):
        home.entry(BLOCK).owner = 4
        home.l2.insert(BLOCK, L2Line(version=9))
        home.handle(
            CoherenceMessage(
                MessageType.PUTM, BLOCK, sender=2, requester=2, version=3
            ),
            cycle=0,
        )
        assert home.l2.lookup(BLOCK).version == 9
        assert home.entry(BLOCK).owner == 4
        assert home.sink.of_type(MessageType.WB_ACK)

    def test_puts_removes_sharer_and_clean_owner(self, home):
        entry = home.entry(BLOCK)
        entry.sharers = {2, 3}
        home.handle(
            CoherenceMessage(MessageType.PUTS, BLOCK, sender=2, requester=2), cycle=0
        )
        assert entry.sharers == {3}
        entry.owner = 5
        home.handle(
            CoherenceMessage(MessageType.PUTS, BLOCK, sender=5, requester=5), cycle=0
        )
        assert entry.owner is None


class TestL2Eviction:
    def test_dirty_victim_written_back(self, home):
        sets = home.l2.num_sets
        ways = home.l2.ways
        base = 3
        for i in range(ways):
            home.l2.insert(base + i * sets, L2Line(version=1, dirty=(i == 0)))
        home._install(base + ways * sets, version=1, dirty=False, cycle=0)
        wbs = home.sink.of_type(MessageType.MEM_WRITE)
        assert len(wbs) == 1
        assert wbs[0][0].block == base  # the dirty LRU victim


class TestMemoryController:
    def test_read_latency(self):
        sink = Sink()
        memory = Memory()
        memory.write(BLOCK, 4)
        mc = MemoryController(0, memory, sink, latency=128)
        mc.handle(
            CoherenceMessage(MessageType.MEM_READ, BLOCK, sender=1, requester=1),
            cycle=10,
        )
        for cycle in range(10, 138):
            mc.step(cycle)
            assert not sink.sent, cycle
        mc.step(138)
        ((msg, dest),) = sink.of_type(MessageType.MEM_DATA)
        assert dest == 1 and msg.version == 4

    def test_write_absorbed(self):
        sink = Sink()
        memory = Memory()
        mc = MemoryController(0, memory, sink, latency=128)
        mc.handle(
            CoherenceMessage(
                MessageType.MEM_WRITE, BLOCK, sender=1, requester=1, version=6
            ),
            cycle=0,
        )
        assert memory.read(BLOCK) == 6
        assert not mc.busy

    def test_memory_never_regresses(self):
        memory = Memory()
        memory.write(BLOCK, 5)
        memory.write(BLOCK, 3)
        assert memory.read(BLOCK) == 5

    def test_early_notice_fires_before_response(self):
        sink = Sink()
        notices = []
        mc = MemoryController(
            0,
            Memory(),
            sink,
            latency=20,
            notice_lead=6,
            early_notice=notices.append,
        )
        mc.handle(
            CoherenceMessage(MessageType.MEM_READ, BLOCK, sender=1, requester=1),
            cycle=0,
        )
        for cycle in range(25):
            mc.step(cycle)
        assert notices and notices[0] == 14  # 20 - 6
