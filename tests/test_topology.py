"""Tests for the 2D mesh topology."""

import pytest

from repro.noc import Direction, MeshTopology


class TestCoordinates:
    def test_row_major_numbering(self):
        topo = MeshTopology(8, 8)
        assert topo.node_at(0, 0) == 0
        assert topo.node_at(7, 0) == 7
        assert topo.node_at(3, 3) == 27
        assert topo.node_at(7, 7) == 63

    def test_coord_roundtrip(self):
        topo = MeshTopology(5, 3)
        for node in range(topo.num_nodes):
            c = topo.coord(node)
            assert topo.node_at(c.x, c.y) == node

    def test_rectangular_mesh(self):
        topo = MeshTopology(4, 2)
        assert topo.num_nodes == 8
        assert topo.coord(5).x == 1
        assert topo.coord(5).y == 1

    def test_out_of_range_node_rejected(self):
        topo = MeshTopology(4)
        with pytest.raises(ValueError):
            topo.coord(16)
        with pytest.raises(ValueError):
            topo.coord(-1)

    def test_out_of_range_coordinate_rejected(self):
        topo = MeshTopology(4)
        with pytest.raises(ValueError):
            topo.node_at(4, 0)

    def test_too_small_mesh_rejected(self):
        with pytest.raises(ValueError):
            MeshTopology(1, 8)


class TestNeighbors:
    def test_interior_neighbors_match_paper_figure4(self):
        # R27 in the paper's 8x8 Figure 4: X+ is R28, Y+ is R35.
        topo = MeshTopology(8, 8)
        assert topo.neighbor(27, Direction.XPOS) == 28
        assert topo.neighbor(27, Direction.XNEG) == 26
        assert topo.neighbor(27, Direction.YPOS) == 35
        assert topo.neighbor(27, Direction.YNEG) == 19

    def test_edge_neighbors_are_none(self):
        topo = MeshTopology(4, 4)
        assert topo.neighbor(0, Direction.XNEG) is None
        assert topo.neighbor(0, Direction.YNEG) is None
        assert topo.neighbor(3, Direction.XPOS) is None
        assert topo.neighbor(15, Direction.YPOS) is None

    def test_local_neighbor_is_self(self):
        topo = MeshTopology(4, 4)
        assert topo.neighbor(5, Direction.LOCAL) == 5

    def test_corner_has_two_neighbors(self):
        topo = MeshTopology(4, 4)
        assert len(list(topo.neighbors(0))) == 2
        assert len(list(topo.neighbors(15))) == 2

    def test_interior_has_four_neighbors(self):
        topo = MeshTopology(4, 4)
        assert len(list(topo.neighbors(5))) == 4

    def test_direction_to_neighbor(self):
        topo = MeshTopology(4, 4)
        assert topo.direction_to_neighbor(5, 6) == Direction.XPOS
        assert topo.direction_to_neighbor(5, 9) == Direction.YPOS
        with pytest.raises(ValueError):
            topo.direction_to_neighbor(5, 7)

    def test_opposite_directions(self):
        assert Direction.XPOS.opposite == Direction.XNEG
        assert Direction.YNEG.opposite == Direction.YPOS
        assert Direction.LOCAL.opposite == Direction.LOCAL

    def test_link_count(self):
        # 2 * (w-1) * h horizontal + 2 * w * (h-1) vertical directed links.
        topo = MeshTopology(8, 8)
        assert len(list(topo.links())) == 2 * 7 * 8 + 2 * 8 * 7


class TestDistance:
    def test_hop_distance_is_manhattan(self):
        topo = MeshTopology(8, 8)
        assert topo.hop_distance(0, 63) == 14
        assert topo.hop_distance(27, 27) == 0
        assert topo.hop_distance(27, 28) == 1
        assert topo.hop_distance(3, 27) == 3

    def test_nodes_within_matches_paper_section3(self):
        # "There are 24 routers within 3 hops of router 27 ... nearly
        # 38% of all routers on the chip."
        topo = MeshTopology(8, 8)
        within = topo.nodes_within(27, 3)
        assert len(within) == 24
        assert 24 / topo.num_nodes == pytest.approx(0.375)

    def test_nodes_within_excludes_self(self):
        topo = MeshTopology(4, 4)
        assert 5 not in topo.nodes_within(5, 2)

    def test_nodes_within_one_hop(self):
        topo = MeshTopology(4, 4)
        assert sorted(topo.nodes_within(5, 1)) == [1, 4, 6, 9]
