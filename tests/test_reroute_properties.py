"""Property-based tests (hypothesis) for fault-tolerant rerouting.

The headline properties the reroute tier must uphold, checked over
randomized placements, workloads and seeds rather than hand-picked
scenarios:

* for EVERY single-dead-router placement on a 4x4 mesh, traffic
  injected after the death is fully delivered — no deadlock, no silent
  loss — under the strict invariant checker and deadlock watchdog;
* the up*/down* channel-dependency graph stays acyclic for arbitrary
  (multi-router) dead sets;
* the active-set kernel and the naive kernel remain cycle- and
  stat-exact under reroute degradation for random workloads.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import NoPG, PowerPunchPG
from repro.noc import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultTolerantRouting,
    InvariantChecker,
    MeshTopology,
    Network,
    NoCConfig,
    VirtualNetwork,
    control_packet,
)
from repro.noc.packet import reset_packet_ids
from repro.traffic import SyntheticTraffic

MESH = 4
NODES = MESH * MESH


def _reroute_network(dead, *, kernel="active", start=20, threshold=30):
    config = NoCConfig(
        width=MESH,
        height=MESH,
        kernel=kernel,
        degradation="reroute",
        dead_router_threshold=threshold,
    )
    net = Network(config, NoPG())
    net.install_faults(
        FaultInjector(
            FaultSchedule([FaultSpec(kind="router_stall", router=dead, start=start)])
        )
    )
    return net


class TestEveryPlacementDelivers:
    @settings(
        max_examples=16,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(dead=st.integers(0, NODES - 1), seed=st.integers(0, 2**16))
    def test_post_death_traffic_is_fully_delivered(self, dead, seed):
        """Hypothesis sweeps (placement, workload); a one-router fault
        anywhere on the mesh never deadlocks and never loses a packet
        injected after the reroute took effect."""
        net = _reroute_network(dead)
        checker = InvariantChecker(strict=True, max_network_age=20_000)
        net.install_invariants(checker)
        net.run(60)  # stall at 20 + threshold 30 => declared dead by 60
        assert net.dead_routers == {dead}
        rng = random.Random(seed)
        live = [n for n in range(NODES) if n != dead]
        sent = []
        for _ in range(120):
            if rng.random() < 0.35:
                src, dst = rng.sample(live, 2)
                packet = control_packet(
                    src, dst, VirtualNetwork.REQUEST, net.cycle
                )
                net.inject(packet)
                sent.append(packet)
            net.step()
        net.run_until_drained(30_000)
        assert sent, "workload generated no packets"
        assert all(p.delivered_at is not None for p in sent)
        assert checker.flits_sent == checker.flits_ejected + checker.flits_dropped
        assert not checker.live

    def test_exhaustive_every_single_placement(self):
        """Deterministic exhaustive pass: all 16 placements, fixed
        workload, all delivered (complements the randomized sweep)."""
        for dead in range(NODES):
            net = _reroute_network(dead)
            net.install_invariants(
                InvariantChecker(strict=True, max_network_age=20_000)
            )
            net.run(60)
            assert net.dead_routers == {dead}
            live = [n for n in range(NODES) if n != dead]
            sent = []
            for i, src in enumerate(live):
                dst = live[(i * 7 + 3) % len(live)]
                if dst == src:
                    dst = live[(i * 7 + 4) % len(live)]
                packet = control_packet(
                    src, dst, VirtualNetwork.REQUEST, net.cycle
                )
                net.inject(packet)
                sent.append(packet)
                net.step()
            net.run_until_drained(30_000)
            assert all(p.delivered_at is not None for p in sent), f"dead={dead}"


class TestChannelDependencyAcyclicity:
    @settings(max_examples=30, deadline=None)
    @given(
        dead=st.sets(st.integers(0, NODES - 1), min_size=0, max_size=5)
    )
    def test_random_dead_sets_stay_acyclic(self, dead):
        """verify_deadlock_free() holds for arbitrary dead sets — the
        only prohibited turn (down->up) is what makes the CDG acyclic,
        independent of which routers died."""
        rt = FaultTolerantRouting(MeshTopology(MESH, MESH))
        rt.set_dead(frozenset(dead))
        if len(dead) < NODES:
            deps = rt.verify_deadlock_free()
            if not dead:
                assert deps == 0  # pure XY: nothing to verify
            else:
                assert deps > 0


class TestKernelEquivalenceUnderReroute:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        dead=st.integers(0, NODES - 1),
        seed=st.integers(0, 2**16),
        rate=st.sampled_from([0.02, 0.05, 0.08]),
    )
    def test_active_and_naive_kernels_agree(self, dead, seed, rate):
        dumps = []
        for kernel in ("active", "naive"):
            reset_packet_ids()
            net = _reroute_network(dead, kernel=kernel, start=100, threshold=60)
            traffic = SyntheticTraffic(net, "uniform_random", rate, seed=seed)
            traffic.run(500)
            traffic.drain()
            dumps.append((net.cycle, net.stats.as_dict()))
        assert dumps[0] == dumps[1]

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**16))
    def test_kernels_agree_with_power_gating_and_retries(self, seed):
        """Reroute + PG + a total wakeup_fail window together: the
        active kernel must keep OFF controllers with armed retries
        stepping, or the two kernels drift."""
        dumps = []
        for kernel in ("active", "naive"):
            reset_packet_ids()
            config = NoCConfig(
                width=MESH,
                height=MESH,
                kernel=kernel,
                degradation="reroute",
                dead_router_threshold=60,
            )
            net = Network(config, PowerPunchPG(wakeup_latency=8, timeout=4))
            net.install_faults(
                FaultInjector(
                    FaultSchedule.parse(
                        "router_stall,router=5,start=100;"
                        "wakeup_fail,rate=1.0,start=0,end=250;seed=3"
                    )
                )
            )
            traffic = SyntheticTraffic(net, "uniform_random", 0.04, seed=seed)
            traffic.run(500)
            traffic.drain()
            dumps.append((net.cycle, net.stats.as_dict()))
        assert dumps[0] == dumps[1]
