"""Tests for the punch-signal encoding analysis (Table 1, Fig. 5)."""

import pytest

from repro.core import PunchEncodingAnalysis
from repro.noc import Direction, MeshTopology


@pytest.fixture(scope="module")
def analysis():
    return PunchEncodingAnalysis(MeshTopology(8, 8), hops=3)


class TestSources:
    def test_xpos_sources_of_r27(self, analysis):
        # Paper Sec. 4.1 step 3: XY turn restrictions leave only
        # R25, R26 and R27 as possible sources on the R27->R28 link.
        enc = analysis.analyze_link(27, Direction.XPOS)
        assert enc.sources == (25, 26, 27)

    def test_xpos_target_counts_of_r27(self, analysis):
        # Step 4: "R27 has 9 possible targeted routers; R26 has 4
        # (R20, R28, R29, R36) and R25 has 1 (R28)".
        enc = analysis.analyze_link(27, Direction.XPOS)
        assert len(enc.targets_by_source[27]) == 9
        assert enc.targets_by_source[26] == frozenset({20, 28, 29, 36})
        assert enc.targets_by_source[25] == frozenset({28})

    def test_r27_nine_targets_exact(self, analysis):
        enc = analysis.analyze_link(27, Direction.XPOS)
        assert enc.targets_by_source[27] == frozenset(
            {12, 20, 21, 28, 29, 30, 36, 37, 44}
        )

    def test_ypos_sources_numerous_but_targets_limited(self, analysis):
        enc = analysis.analyze_link(27, Direction.YPOS)
        assert len(enc.sources) == 9
        all_targets = set()
        for ts in enc.targets_by_source.values():
            all_targets |= ts
        assert all_targets == {35, 43, 51}


class TestDistinctSets:
    def test_table1_has_22_sets(self, analysis):
        # The paper's Table 1: 22 distinct sets of targeted routers in
        # the X+ direction of R27.
        enc = analysis.analyze_link(27, Direction.XPOS)
        assert len(enc.distinct_sets) == 22

    def test_table1_singletons_present(self, analysis):
        enc = analysis.analyze_link(27, Direction.XPOS)
        singles = {s for s in enc.distinct_sets if len(s) == 1}
        assert singles == {
            frozenset({t}) for t in (12, 20, 21, 28, 29, 30, 36, 37, 44)
        }

    def test_table1_pairs_match_paper(self, analysis):
        enc = analysis.analyze_link(27, Direction.XPOS)
        pairs = {tuple(sorted(s)) for s in enc.distinct_sets if len(s) == 2}
        expected = {
            (12, 29), (12, 36), (20, 21), (21, 36), (20, 30), (30, 36),
            (20, 37), (36, 37), (20, 44), (29, 44), (20, 29), (20, 36),
            (29, 36),
        }
        assert pairs == expected

    def test_ypos_three_sets(self, analysis):
        enc = analysis.analyze_link(27, Direction.YPOS)
        assert set(enc.distinct_sets) == {
            frozenset({35}), frozenset({43}), frozenset({51})
        }


class TestCanonicalization:
    def test_paper_example_29_implicit_in_21(self, analysis):
        # "R26 to R29 is along the path from R27 to R21": {29, 21}
        # collapses to {21} on the R27->R28 link (link_dst = 28).
        assert analysis.canonicalize(frozenset({29, 21}), 28) == frozenset({21})

    def test_link_destination_always_implicit(self, analysis):
        assert analysis.canonicalize(frozenset({28, 12}), 28) == frozenset({12})

    def test_independent_targets_kept(self, analysis):
        assert analysis.canonicalize(frozenset({36, 21}), 28) == frozenset({36, 21})

    def test_straight_line_chain_collapses(self, analysis):
        assert analysis.canonicalize(frozenset({35, 43, 51}), 35) == frozenset({51})

    def test_singleton_unchanged(self, analysis):
        assert analysis.canonicalize(frozenset({30}), 28) == frozenset({30})


class TestWidths:
    def test_3hop_widths_match_figure5(self, analysis):
        # Fig. 5: 5-bit punch signals on X links, 2-bit on Y links.
        assert analysis.max_width("x") == 5
        assert analysis.max_width("y") == 2

    def test_4hop_widths_match_section41(self):
        # "for the case of 4-hop wakeup signal slack, the width of punch
        # signals is 8-bit for the X directions and 2-bit for the Y".
        # Our exhaustive enumeration confirms 8 bits on X.  On Y it
        # finds four straight-line targets ({35},{43},{51},{59}) which
        # plus the idle code need 3 bits, one more than the paper
        # claims — see EXPERIMENTS.md for this discrepancy note.
        analysis4 = PunchEncodingAnalysis(MeshTopology(8, 8), hops=4)
        enc = analysis4.analyze_link(27, Direction.XPOS)
        assert enc.width_bits == 8
        assert len(analysis4.analyze_link(27, Direction.YPOS).distinct_sets) == 4
        assert analysis4.analyze_link(27, Direction.YPOS).width_bits == 3

    def test_widths_independent_of_network_size(self):
        # Sec. 6.6(2): punch width depends on hop slack, not mesh size.
        small = PunchEncodingAnalysis(MeshTopology(4, 4), hops=3)
        big = PunchEncodingAnalysis(MeshTopology(16, 16), hops=3)
        # Compare a fully interior router in each mesh.
        small_enc = small.analyze_link(5, Direction.XPOS)
        big_enc = big.analyze_link(16 * 8 + 8, Direction.XPOS)
        assert small_enc.width_bits <= 5
        assert big_enc.width_bits == 5

    def test_2hop_design_is_narrower(self):
        analysis2 = PunchEncodingAnalysis(MeshTopology(8, 8), hops=2)
        enc = analysis2.analyze_link(27, Direction.XPOS)
        assert enc.width_bits < 5


class TestEncodingTable:
    def test_codes_unique_and_fit_width(self, analysis):
        table = analysis.encoding_table(27, Direction.XPOS)
        codes = [code for _, code in table]
        assert len(set(codes)) == len(codes) == 22
        assert all(len(code) == 5 for code in codes)

    def test_edge_router_narrower_or_equal(self, analysis):
        # Edge routers see fewer sources; their links never need more
        # bits than the interior worst case.
        enc = analysis.analyze_link(0, Direction.XPOS)
        assert enc.width_bits <= 5
