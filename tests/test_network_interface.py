"""Tests for the network interface."""


from repro.core import ConvOptPG
from repro.noc import (
    Network,
    NoCConfig,
    VirtualNetwork,
    control_packet,
    data_packet,
)


def make_net(policy=None):
    return Network(NoCConfig(), policy)


class TestInjectionTiming:
    def test_ni_latency_before_injection(self):
        net = make_net()
        p = control_packet(5, 6, VirtualNetwork.REQUEST, 0)
        net.inject(p)
        for _ in range(20):
            net.step()
        assert p.injected_at == net.config.ni_latency

    def test_one_flit_per_cycle_across_vnets(self):
        net = make_net()
        a = control_packet(5, 6, VirtualNetwork.REQUEST, 0)
        b = control_packet(5, 6, VirtualNetwork.FORWARD, 0)
        c = control_packet(5, 6, VirtualNetwork.RESPONSE, 0)
        for p in (a, b, c):
            net.inject(p)
        net.run_until_drained(500)
        injections = sorted(p.injected_at for p in (a, b, c))
        assert injections == sorted(set(injections)), "two flits in one cycle"

    def test_queueing_within_vnet(self):
        net = make_net()
        first = control_packet(5, 6, VirtualNetwork.REQUEST, 0)
        second = control_packet(5, 6, VirtualNetwork.REQUEST, 0)
        net.inject(first)
        net.inject(second)
        net.run_until_drained(500)
        assert second.injected_at > first.injected_at

    def test_data_packet_streams_five_flits(self):
        net = make_net()
        p = data_packet(5, 6, VirtualNetwork.RESPONSE, 0)
        net.inject(p)
        net.run_until_drained(500)
        assert net.stats.delivered_flits == 5


class TestSleepSignal:
    def test_wants_router_only_when_ready(self):
        net = make_net()
        ni = net.interfaces[5]
        p = control_packet(5, 6, VirtualNetwork.REQUEST, 0)
        ni.enqueue(p, 0)
        # Still inside the NI pipeline: the router is not held awake —
        # this is exactly the slack-1 window Power Punch exploits.
        assert not ni.wants_local_router(0)
        assert not ni.wants_local_router(net.config.ni_latency - 1)
        assert ni.wants_local_router(net.config.ni_latency)

    def test_injection_blocked_by_gated_router_counts(self):
        scheme = ConvOptPG(wakeup_latency=8)
        net = make_net(scheme)
        for _ in range(20):
            net.step()
        assert scheme.controllers[5].is_off
        p = control_packet(5, 6, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(2000)
        assert 5 in p.blocked_routers
        assert p.wakeup_wait_cycles >= scheme.wakeup_latency - 2


class TestEjection:
    def test_listener_fires_on_tail(self):
        net = make_net()
        seen = []
        net.add_delivery_listener(lambda p, c: seen.append((p.packet_id, c)))
        p = data_packet(0, 9, VirtualNetwork.RESPONSE, 0)
        net.inject(p)
        net.run_until_drained(500)
        assert seen == [(p.packet_id, p.delivered_at)]

    def test_ejection_counts(self):
        net = make_net()
        p = control_packet(0, 9, VirtualNetwork.REQUEST, 0)
        net.inject(p)
        net.run_until_drained(500)
        assert net.interfaces[9].ejected_packets == 1
        assert net.interfaces[0].injected_packets == 1
