"""Guarantees layer: analytical latency bounds + runtime enforcement.

Covers the bound model term by term, the non-blocking certificate
(PowerPunch-PG's bound equals No-PG's on every route; ConvOpt-PG's is
strictly larger; a slack-starved punch loses the certificate), the
BoundChecker's quiet path and its firing path (proven with a
deliberately unsatisfiable bound), the bounds/faults mutual exclusion,
the ambient ``--bounds`` plumbing, the ``guarantees`` campaign cell,
and a hypothesis property: at low load no delivered packet exceeds its
certified bound on any topology, scheme, or cycle kernel.
"""

import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro.baselines import NoRDLike
from repro.campaign import CellSpec
from repro.campaign.runner import run_cell
from repro.core import ConvOptPG, NoPG, PowerPunchPG
from repro.experiments.guarantees import certificate_report, render_certificates
from repro.guarantees import (
    BoundChecker,
    LatencyBoundModel,
    UnboundableConfigError,
    certify_non_blocking,
    resolved_punch_hops,
    wakeup_penalty_per_hop,
)
from repro.noc import (
    BoundViolationError,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultSpecError,
    InvariantChecker,
    Network,
    NoCConfig,
)
from repro.noc.faults import clear_ambient, set_ambient
from repro.powergate import PowerGateController
from repro.traffic import SyntheticTraffic

CONFIG = NoCConfig(width=4, height=4)


# ----------------------------------------------------------------------
# Penalty model
# ----------------------------------------------------------------------
def test_always_on_penalty_is_zero():
    assert wakeup_penalty_per_hop(None, CONFIG) == 0
    assert wakeup_penalty_per_hop(NoPG(), CONFIG) == 0


def test_powerpunch_default_penalty_is_zero():
    # punch_hops = ceil(8/3) = 3 hides 9 >= 8 cycles: the certificate.
    scheme = PowerPunchPG()
    assert resolved_punch_hops(scheme, CONFIG) == 3
    assert wakeup_penalty_per_hop(scheme, CONFIG) == 0


def test_slack_starved_punch_pays_residual():
    scheme = PowerPunchPG(punch_hops=1)  # hides only 3 of 8 cycles
    assert resolved_punch_hops(scheme, CONFIG) == 1
    assert wakeup_penalty_per_hop(scheme, CONFIG) == 5


def test_convopt_pays_full_wakeup():
    assert wakeup_penalty_per_hop(ConvOptPG(), CONFIG) == 8
    assert wakeup_penalty_per_hop(ConvOptPG(wakeup_latency=12), CONFIG) == 12


def test_penalty_matches_controller_contract():
    # The analytical per-hop price for non-forewarned schemes is the
    # controller's own certified worst case.
    controller = PowerGateController(0, wakeup_latency=8, timeout=4)
    assert controller.worst_case_stall == 8
    assert wakeup_penalty_per_hop(ConvOptPG(), CONFIG) == controller.worst_case_stall


def test_nord_is_unboundable():
    with pytest.raises(UnboundableConfigError):
        wakeup_penalty_per_hop(NoRDLike(), CONFIG)


def test_unknown_scheme_is_unboundable():
    with pytest.raises(UnboundableConfigError):
        wakeup_penalty_per_hop(object(), CONFIG)


# ----------------------------------------------------------------------
# Bound model
# ----------------------------------------------------------------------
def test_bound_terms_decomposition():
    model = LatencyBoundModel(CONFIG)
    terms = model.bound(0, 3, size_flits=5)  # 3 hops along the top row
    assert terms.hops == 3
    # The pinned zero-load pipeline formula from tests/test_network.
    assert terms.zero_load == 1 + 3 * (3 + 1) + 2
    assert terms.serialization == 4
    # (hops + 1) routers x (num_vcs - 1) competitors x max packet size.
    assert terms.contention == 4 * 5 * 5
    assert terms.wakeup_penalty == 0
    assert terms.total == sum(
        (terms.zero_load, terms.serialization, terms.contention, terms.wakeup_penalty)
    )
    assert terms.as_dict()["total"] == terms.total


def test_bound_zero_for_self_route():
    terms = LatencyBoundModel(CONFIG).bound(5, 5)
    assert terms.hops == 0
    assert terms.total == 0


def test_bound_scales_with_wakeup_penalty():
    base = LatencyBoundModel(CONFIG, None).bound(0, 15).total
    conv = LatencyBoundModel(CONFIG, ConvOptPG()).bound(0, 15).total
    assert conv == base + 6 * 8  # 6 hops x full wakeup each


# ----------------------------------------------------------------------
# The non-blocking certificate
# ----------------------------------------------------------------------
def test_powerpunch_certificate_holds_on_8x8():
    cert = certify_non_blocking(NoCConfig())
    assert cert["routes"] == 64 * 63
    assert cert["equal_routes"] == cert["routes"]
    assert cert["non_blocking"] is True
    assert cert["max_gap_cycles"] == 0
    assert cert["wakeup_penalty_per_hop"] == 0


def test_convopt_bound_strictly_larger_everywhere():
    cert = certify_non_blocking(NoCConfig(), ConvOptPG())
    assert cert["non_blocking"] is False
    assert cert["equal_routes"] == 0
    # Worst route: the 14-hop mesh diagonal, 8 cycles per hop.
    assert cert["max_gap_cycles"] == 14 * 8


def test_slack_starved_punch_loses_certificate():
    cert = certify_non_blocking(NoCConfig(), PowerPunchPG(punch_hops=1))
    assert cert["non_blocking"] is False
    assert cert["max_gap_cycles"] == 14 * 5


def test_certificate_report_renders_both_schemes():
    certs = certificate_report(NoCConfig(width=4, height=4))
    assert certs["PowerPunch-PG"]["non_blocking"] is True
    assert certs["ConvOpt-PG"]["non_blocking"] is False
    text = render_certificates(certs)
    assert "PowerPunch-PG" in text and "YES" in text


# ----------------------------------------------------------------------
# Runtime enforcement
# ----------------------------------------------------------------------
def _run_with_checker(config, scheme, checker, rate=0.05, cycles=400, seed=7):
    network = Network(config, scheme)
    network.install_bounds(checker)
    traffic = SyntheticTraffic(network, "uniform_random", rate, seed=seed)
    traffic.run(cycles)
    traffic.drain()
    return network


def test_checker_quiet_at_low_load():
    checker = BoundChecker(strict=True)
    _run_with_checker(CONFIG, PowerPunchPG(), checker)
    assert checker.checked > 0
    assert not checker.violations
    report = checker.report()
    assert report["violations"] == 0
    assert 0.0 < report["worst_ratio"] <= 1.0
    assert report["worst"]["observed"] <= report["worst"]["bound"]
    assert report["model"]["wakeup_penalty_per_hop"] == 0


def test_strict_checker_raises_on_unsatisfiable_bound():
    # Zero contention allowance is a bound real traffic cannot meet:
    # proves the firing path end to end (route + decomposition).
    checker = BoundChecker(strict=True, contention_per_router=0)
    with pytest.raises(BoundViolationError) as excinfo:
        _run_with_checker(CONFIG, PowerPunchPG(), checker, rate=0.2, cycles=600)
    err = excinfo.value
    assert err.observed > err.bound
    assert err.terms["contention"] == 0
    assert err.route[0] == err.terms["source"]
    assert err.route[-1] == err.terms["destination"]


def test_nonstrict_checker_accumulates_violations():
    checker = BoundChecker(strict=False, contention_per_router=0)
    _run_with_checker(CONFIG, PowerPunchPG(), checker, rate=0.2, cycles=600)
    assert checker.violations
    report = checker.report()
    assert report["violations"] == len(checker.violations)
    assert report["violation_summaries"][0]["observed"] > report[
        "violation_summaries"
    ][0]["bound"]
    assert report["worst_ratio"] > 1.0


def test_violation_carries_post_mortem_with_invariants():
    network = Network(CONFIG, PowerPunchPG())
    network.install_invariants(InvariantChecker(strict=True))
    checker = BoundChecker(strict=True, contention_per_router=0)
    network.install_bounds(checker)
    traffic = SyntheticTraffic(network, "uniform_random", 0.2, seed=7)
    with pytest.raises(BoundViolationError) as excinfo:
        traffic.run(600)
        traffic.drain()
    assert excinfo.value.post_mortem is not None
    assert "post-mortem" in str(excinfo.value).lower()


def test_checker_refuses_faulted_network():
    network = Network(CONFIG, PowerPunchPG())
    schedule = FaultSchedule((FaultSpec(kind="punch_drop", rate=0.5),))
    network.install_faults(FaultInjector(schedule))
    with pytest.raises(UnboundableConfigError):
        BoundChecker().attach(network)


def test_faults_refused_on_bounded_network():
    network = Network(CONFIG, PowerPunchPG())
    network.install_bounds(BoundChecker())
    schedule = FaultSchedule((FaultSpec(kind="punch_drop", rate=0.5),))
    with pytest.raises(UnboundableConfigError):
        network.install_faults(FaultInjector(schedule))


def test_full_load_strict_bounds_powerpunch():
    # The acceptance scenario: the paper's full evaluated load on the
    # 8x8 mesh under strict enforcement, zero violations.
    checker = BoundChecker(strict=True)
    _run_with_checker(NoCConfig(), PowerPunchPG(), checker, rate=0.2, cycles=600)
    assert checker.checked > 500
    assert not checker.violations


# ----------------------------------------------------------------------
# Ambient --bounds plumbing
# ----------------------------------------------------------------------
def test_ambient_bounds_installs_strict_checker():
    set_ambient(None, False, None, None, None, True)
    try:
        network = Network(CONFIG, PowerPunchPG())
        assert network.bounds is not None
        assert network.bounds.strict is True
    finally:
        clear_ambient()
    assert Network(CONFIG, PowerPunchPG()).bounds is None


def test_ambient_bounds_and_faults_are_exclusive():
    with pytest.raises(FaultSpecError):
        set_ambient("punch_drop,rate=0.5", False, None, None, None, True)
    clear_ambient()


# ----------------------------------------------------------------------
# The guarantees campaign cell
# ----------------------------------------------------------------------
def _tiny_cell(**overrides):
    params = dict(
        warmup=150,
        measurement=300,
        seed=7,
        config=NoCConfig(width=4, height=4),
    )
    params.update(overrides)
    return CellSpec.guarantees("uniform_random", 0.05, "PowerPunch-PG", **params)


def test_guarantees_cell_payload():
    payload = run_cell(_tiny_cell())
    assert payload["checked"] > 0
    assert payload["violations"] == 0
    assert 0.0 < payload["worst_ratio"] <= 1.0
    assert payload["p50"] <= payload["p95"] <= payload["p99"]
    assert payload["model"]["scheme"] == "PowerPunch-PG"


def test_guarantees_cell_deterministic():
    assert run_cell(_tiny_cell()) == run_cell(_tiny_cell())


def test_guarantees_cell_always_on_reference():
    payload = run_cell(_tiny_cell())
    reference = run_cell(
        CellSpec.guarantees(
            "uniform_random",
            0.05,
            "-",
            warmup=150,
            measurement=300,
            seed=7,
            config=NoCConfig(width=4, height=4),
        )
    )
    assert reference["model"]["scheme"] == "No-PG"
    assert reference["model"]["wakeup_penalty_per_hop"] == 0
    assert payload["model"]["wakeup_penalty_per_hop"] == 0


def test_guarantees_cell_strict_raises():
    # A strict cell over saturating traffic: 8x8 transpose at 0.3 is
    # past saturation, where the admissible-load contention allowance
    # no longer applies — the enforcement path must fire.
    cell = CellSpec.guarantees(
        "transpose",
        0.3,
        "ConvOpt-PG",
        warmup=200,
        measurement=1500,
        seed=7,
        config=NoCConfig(width=8, height=8),
        strict=True,
        drain=False,
    )
    with pytest.raises(BoundViolationError):
        run_cell(cell)


# ----------------------------------------------------------------------
# Property: certified bounds hold at low load everywhere
# ----------------------------------------------------------------------
_FABRICS = (
    ("mesh", NoCConfig(width=4, height=4)),
    ("torus", NoCConfig(width=4, height=4, topology="torus")),
    ("ring", NoCConfig(width=8, height=1, topology="ring")),
)

_SCHEME_BUILDERS = {
    "always-on": lambda: None,
    "No-PG": NoPG,
    "ConvOpt-PG": ConvOptPG,
    "PowerPunch-PG": PowerPunchPG,  # mesh-only (punch fabric is XY)
}


@st.composite
def bound_scenarios(draw):
    fabric, config = draw(st.sampled_from(_FABRICS))
    names = ["always-on", "No-PG", "ConvOpt-PG"]
    if fabric == "mesh":
        names.append("PowerPunch-PG")
    scheme_name = draw(st.sampled_from(names))
    kernel = draw(st.sampled_from(("naive", "active", "vector")))
    rate = draw(st.sampled_from((0.01, 0.03, 0.05)))
    seed = draw(st.integers(1, 50))
    return config, scheme_name, kernel, rate, seed


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(bound_scenarios())
def test_no_packet_exceeds_bound_at_low_load(scenario):
    config, scheme_name, kernel, rate, seed = scenario
    config = NoCConfig(
        width=config.width,
        height=config.height,
        topology=config.topology,
        kernel=kernel,
    )
    checker = BoundChecker(strict=True)
    network = Network(config, _SCHEME_BUILDERS[scheme_name]())
    network.install_bounds(checker)
    traffic = SyntheticTraffic(network, "uniform_random", rate, seed=seed)
    traffic.run(300)
    traffic.drain()
    assert checker.checked > 0
    assert not checker.violations
