"""Tests for punch-signal propagation timing and merging."""

from repro.core import PunchFabric
from repro.noc import MeshTopology, XYRouting


class Recorder:
    """Records (router, cycle) punch deliveries."""

    def __init__(self):
        self.events = []

    def __call__(self, router, cycle):
        self.events.append((router, cycle))

    def cycles_for(self, router):
        return [c for r, c in self.events if r == router]


def make_fabric(width=8):
    routing = XYRouting(MeshTopology(width, width))
    rec = Recorder()
    return PunchFabric(routing, rec), rec


class TestPropagationTiming:
    def test_local_punch_touches_origin_same_cycle(self):
        fabric, rec = make_fabric()
        fabric.send_local(27, {30}, cycle=5)
        assert (27, 5) in rec.events

    def test_one_hop_per_cycle(self):
        # Punch from R27 to R30 (3 hops X+): touches 28 at t+1, 29 at
        # t+2, 30 at t+3 — the paper's contention-free relay timing.
        fabric, rec = make_fabric()
        fabric.send_local(27, {30}, cycle=0)
        for cycle in range(1, 5):
            fabric.deliver(cycle)
        assert rec.cycles_for(28) == [1]
        assert rec.cycles_for(29) == [2]
        assert rec.cycles_for(30) == [3]

    def test_relay_follows_xy_path(self):
        # R26 -> R45: path 26,27,28,29,37,45 (X then Y).
        fabric, rec = make_fabric()
        fabric.send_local(26, {45}, cycle=0)
        for cycle in range(1, 8):
            fabric.deliver(cycle)
        touched = [r for r, _ in rec.events]
        assert touched == [26, 27, 28, 29, 37, 45]

    def test_no_delivery_without_pending(self):
        fabric, rec = make_fabric()
        fabric.deliver(0)
        assert rec.events == []


class TestMerging:
    def test_same_cycle_signals_merge_without_delay(self):
        # Two targets sharing the first link travel together: no
        # contention delay (Sec. 4.1 step 5).
        fabric, rec = make_fabric()
        fabric.send_local(27, {29, 30}, cycle=0)
        fabric.deliver(1)
        fabric.deliver(2)
        fabric.deliver(3)
        assert rec.cycles_for(29) == [2]
        assert rec.cycles_for(30) == [3]
        # 28 relays the merged signal once per cycle it carries targets.
        assert rec.cycles_for(28) == [1]

    def test_merge_from_different_sources(self):
        # 26->29 and 27->30 issued the same cycle: the 26->29 signal is
        # one hop behind, and both proceed with no contention delay.
        fabric, rec = make_fabric()
        fabric.send_local(26, {29}, cycle=0)
        fabric.send_local(27, {30}, cycle=0)
        fabric.deliver(1)
        fabric.deliver(2)
        fabric.deliver(3)
        assert rec.cycles_for(28) == [1, 2]  # relay for 30, then for 29
        assert rec.cycles_for(29) == [2, 3]  # relay for 30, then target
        assert rec.cycles_for(30) == [3]

    def test_link_transmission_counting_merged(self):
        fabric, _ = make_fabric()
        fabric.send_local(27, {29, 30}, cycle=0)
        fabric.deliver(1)
        # One merged transmission 27->28, then one 28->29.
        assert fabric.link_transmissions == 2

    def test_duplicate_targets_collapse(self):
        fabric, rec = make_fabric()
        fabric.send_local(26, {29}, cycle=0)
        fabric.send_local(26, {29}, cycle=0)
        fabric.deliver(1)
        fabric.deliver(2)
        fabric.deliver(3)
        assert rec.cycles_for(29) == [3]

    def test_targets_delivered_counter(self):
        fabric, _ = make_fabric()
        fabric.send_local(27, {28}, cycle=0)
        fabric.deliver(1)
        assert fabric.targets_delivered == 1


class TestYDirection:
    def test_y_direction_punch(self):
        fabric, rec = make_fabric()
        fabric.send_local(27, {51}, cycle=0)  # straight down Y+
        for cycle in range(1, 4):
            fabric.deliver(cycle)
        assert rec.cycles_for(35) == [1]
        assert rec.cycles_for(43) == [2]
        assert rec.cycles_for(51) == [3]
