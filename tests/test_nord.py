"""Tests for the NoRD-like bypass-ring baseline."""


from repro.baselines import BypassRing, NoRDLike, snake_order
from repro.core import PowerPunchPG
from repro.noc import MeshTopology, Network, NoCConfig, VirtualNetwork, control_packet
from repro.traffic import SyntheticTraffic, measure


class TestSnakeOrder:
    def test_visits_every_node_once(self):
        topo = MeshTopology(8, 8)
        order = snake_order(topo)
        assert sorted(order) == list(range(64))

    def test_consecutive_stops_are_mesh_neighbors(self):
        topo = MeshTopology(8, 8)
        order = snake_order(topo)
        for a, b in zip(order, order[1:]):
            assert topo.hop_distance(a, b) == 1

    def test_small_mesh(self):
        topo = MeshTopology(2, 2)
        assert snake_order(topo) == [0, 1, 3, 2]


class TestBypassRing:
    def make_ring(self):
        topo = MeshTopology(4, 4)
        return BypassRing(snake_order(topo), hop_latency=2)

    def test_board_and_ride(self):
        ring = self.make_ring()
        p = control_packet(0, 5, VirtualNetwork.REQUEST, 0)
        ring.board(0, p)
        exits = []

        def try_exit(node, packet, cycle):
            if node == packet.destination:
                exits.append((node, cycle))
                return True
            return False

        for cycle in range(100):
            ring.step(cycle, try_exit)
            if exits:
                break
        assert exits
        assert ring.in_transit() == 0

    def test_one_flit_wide_serialization(self):
        """A 5-flit packet occupies a ring link for 5 cycles."""
        ring = self.make_ring()
        from repro.noc import data_packet

        a = data_packet(0, 15, VirtualNetwork.RESPONSE, 0)
        b = data_packet(0, 15, VirtualNetwork.RESPONSE, 0)
        ring.board(0, a)
        ring.board(0, b)
        positions = {}

        def never_exit(node, packet, cycle):
            positions[packet.packet_id] = (node, cycle)
            return False

        for cycle in range(30):
            ring.step(cycle, never_exit)
        # b trails a by at least the serialization delay.
        assert ring.ring_hops >= 2
        assert ring.hops_ridden[a.packet_id] > ring.hops_ridden[b.packet_id]

    def test_hops_ridden_tracked(self):
        ring = self.make_ring()
        p = control_packet(0, 100, VirtualNetwork.REQUEST, 0)  # never exits
        p.destination = -1
        ring.board(0, p)
        for cycle in range(30):
            ring.step(cycle, lambda n, pk, c: False)
        assert ring.hops_ridden[p.packet_id] >= 3


class TestNoRDScheme:
    def run_traffic(self, scheme, load=0.01, cycles=3000, seed=7):
        net = Network(NoCConfig(), scheme)
        traffic = SyntheticTraffic(net, "uniform_random", load, seed=seed)
        measure(net, traffic, warmup=500, measurement=cycles)
        return net

    def test_all_packets_delivered(self):
        scheme = NoRDLike()
        net = self.run_traffic(scheme)
        assert net.is_drained()
        assert net.stats.delivered > 0

    def test_transit_never_punches(self):
        scheme = NoRDLike()
        self.run_traffic(scheme, cycles=1500)
        # The punch fabric exists but NoRD generates no transit punches.
        assert scheme.fabric.link_transmissions == 0

    def test_detours_happen_at_low_load(self):
        scheme = NoRDLike()
        self.run_traffic(scheme, cycles=1500)
        assert scheme.detoured_packets > 0

    def test_latency_worse_than_powerpunch(self):
        nord = NoRDLike()
        net_nord = self.run_traffic(nord)
        pp = PowerPunchPG()
        net_pp = self.run_traffic(pp)
        # The paper's Sec. 6.6(3) claim: detour-based schemes pay much
        # more latency than Power Punch.
        assert (
            net_nord.stats.avg_total_latency
            > net_pp.stats.avg_total_latency + 3.0
        )

    def test_saves_static_power(self):
        scheme = NoRDLike()
        self.run_traffic(scheme, cycles=1500)
        total = sum(
            c.active_cycles + c.off_cycles + c.waking_cycles
            for c in scheme.controllers
        )
        off = sum(c.off_cycles for c in scheme.controllers)
        assert off / total > 0.25

    def test_deterministic(self):
        def run():
            scheme = NoRDLike()
            net = self.run_traffic(scheme, cycles=1200)
            return (net.stats.delivered, net.stats.total_network_latency)

        assert run() == run()

    def test_cold_injection_uses_ring(self):
        scheme = NoRDLike()
        net = Network(NoCConfig(), scheme)
        for _ in range(25):
            net.step()
        p = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(5000)
        assert p.delivered_at is not None
        # The packet never waited on a wakeup (NoRD's selling point)...
        assert p.wakeup_wait_cycles == 0
