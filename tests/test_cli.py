"""Tests for the CLI front door."""

import pytest

from repro import cli


class TestDispatch:
    def test_known_commands_registered(self):
        for name in (
            "table1",
            "parsec-suite",
            "fig7-fig8",
            "fig9-fig10",
            "fig11",
            "fig12",
            "fig13",
            "scalability",
            "ablations",
            "baselines",
            "headline",
        ):
            assert name in cli._COMMANDS

    def test_unknown_command_raises(self):
        with pytest.raises(SystemExit):
            cli.main(["frobnicate"])

    def test_help_prints(self, capsys):
        cli.main([])
        out = capsys.readouterr().out
        assert "commands:" in out
        assert "table1" in out

    def test_table1_runs_through_cli_with_arguments(self, capsys):
        # One invocation covers both dispatch and argument passthrough
        # (the exhaustive chip-wide analysis is expensive).
        cli.main(["table1", "--router", "36"])
        out = capsys.readouterr().out
        assert "R36" in out
        assert "22" in out
