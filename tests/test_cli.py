"""Tests for the CLI front door."""

import pytest

from repro import cli
from repro.noc import (
    FaultSpecError,
    Network,
    NoCConfig,
    VirtualNetwork,
    control_packet,
)
from repro.noc.faults import ambient_config


class TestDispatch:
    def test_known_commands_registered(self):
        for name in (
            "table1",
            "parsec-suite",
            "fig7-fig8",
            "fig9-fig10",
            "fig11",
            "fig12",
            "fig13",
            "scalability",
            "ablations",
            "baselines",
            "headline",
        ):
            assert name in cli._COMMANDS

    def test_unknown_command_raises(self):
        with pytest.raises(SystemExit):
            cli.main(["frobnicate"])

    def test_help_prints(self, capsys):
        cli.main([])
        out = capsys.readouterr().out
        assert "commands:" in out
        assert "table1" in out

    def test_table1_runs_through_cli_with_arguments(self, capsys):
        # One invocation covers both dispatch and argument passthrough
        # (the exhaustive chip-wide analysis is expensive).
        cli.main(["table1", "--router", "36"])
        out = capsys.readouterr().out
        assert "R36" in out
        assert "22" in out


class TestRobustnessFlags:
    def test_flags_extracted_before_command(self):
        rest, spec, strict, watchdog, degradation, threshold, bounds = (
            cli._split_robustness_flags(
                [
                    "--strict-invariants",
                    "--faults",
                    "punch_drop,rate=0.5",
                    "fig12",
                    "--patterns",
                    "uniform_random",
                ]
            )
        )
        assert rest == ["fig12", "--patterns", "uniform_random"]
        assert spec == "punch_drop,rate=0.5"
        assert strict is True
        assert watchdog is None
        assert bounds is False

    def test_equals_forms(self):
        rest, spec, strict, watchdog, degradation, threshold, bounds = (
            cli._split_robustness_flags(
                ["--faults=punch_dup", "--watchdog=1234", "headline"]
            )
        )
        assert rest == ["headline"]
        assert spec == "punch_dup"
        assert watchdog == 1234

    def test_flags_after_command_pass_through_to_subcommand(self):
        rest, spec, strict, watchdog, degradation, threshold, bounds = (
            cli._split_robustness_flags(["fig12", "--strict-invariants"])
        )
        assert rest == ["fig12", "--strict-invariants"]
        assert strict is False

    def test_missing_value_exits(self):
        with pytest.raises(SystemExit):
            cli._split_robustness_flags(["--faults"])
        with pytest.raises(SystemExit):
            cli._split_robustness_flags(["--watchdog"])

    def test_bad_watchdog_exits(self):
        with pytest.raises(SystemExit):
            cli._split_robustness_flags(["--watchdog", "soon", "fig12"])

    def test_bad_fault_spec_fails_fast(self):
        """An unparseable --faults string dies before any experiment
        starts, and leaves no ambient configuration behind."""
        with pytest.raises(FaultSpecError):
            cli.main(["--faults", "frobnicate,rate=0.5", "table1"])
        assert ambient_config() == (None, False, None, None, None, False)


class TestRobustnessGolden:
    """End-to-end: the flags reach networks built inside a command, the
    announcement banner prints, and the observed output is unchanged by
    the (purely observational) checker."""

    @staticmethod
    def _zero_load_command(sink):
        def command(argv):
            net = Network(NoCConfig(), None)
            sink.append(net)
            packet = control_packet(0, 7, VirtualNetwork.REQUEST, 0)
            net.inject(packet)
            net.run_until_drained(2000)
            print(f"latency={packet.network_latency}")

        return command

    def test_flags_wire_every_network_and_preserve_goldens(
        self, capsys, monkeypatch
    ):
        nets = []
        monkeypatch.setitem(cli._COMMANDS, "probe", self._zero_load_command(nets))

        cli.main(["probe"])
        baseline = capsys.readouterr().out
        assert "latency=31" in baseline  # zero-load golden (3-stage 8x8)

        cli.main(
            [
                "--strict-invariants",
                "--faults",
                "punch_delay,rate=0;seed=3",
                "--watchdog",
                "5000",
                "probe",
            ]
        )
        out = capsys.readouterr().out
        assert "[robustness]" in out
        assert "strict invariant checking" in out
        # Golden output: identical latency line under the checker.
        assert "latency=31" in out

        plain, checked = nets
        assert plain.faults is None and plain.invariants is None
        assert checked.faults is not None
        assert checked.invariants is not None
        assert checked.invariants.strict
        assert checked.invariants.max_network_age == 5000
        assert checked.invariants.checks_run > 0

        # The ambient configuration never leaks past main().
        assert ambient_config() == (None, False, None, None, None, False)
        assert Network(NoCConfig()).invariants is None
