"""Tests for the declarative campaign engine.

Covers the cell-spec hashing contract, the content-addressed cache
(hit / miss / stale-salt / corrupt-entry paths), the executor
(ordering, parallel equivalence, retry, event log) and the shared
CLI plumbing.
"""

import json

import pytest

from repro.campaign import (
    Campaign,
    CampaignError,
    CellCache,
    CellSpec,
    EventLog,
    campaign_argparser,
    decode_payload,
    encode_payload,
    engine_options,
    execute_cells,
    freeze_items,
    iter_events,
    merge_event_streams,
    run_cell,
)
from repro.campaign.engine import _attempt_cell
from repro.experiments.common import CANONICAL_INSTRUCTIONS, RunRecord
from repro.noc import NoCConfig
from repro.noc.errors import SimulationError


def make_record(**overrides):
    base = dict(
        workload="w",
        scheme="No-PG",
        execution_time=1000,
        avg_packet_latency=30.0,
        avg_total_latency=33.0,
        avg_blocked_routers=0.5,
        avg_wakeup_wait=1.0,
        injection_rate=0.01,
        dynamic_energy=0.2,
        static_energy=1.0,
        overhead_energy=0.25,
        cycles=1000,
    )
    base.update(overrides)
    return RunRecord(**base)


class TestCellSpec:
    def test_hashable_and_usable_as_dict_key(self):
        a = CellSpec.parsec("canneal", "No-PG")
        b = CellSpec.parsec("canneal", "No-PG")
        assert a == b
        assert {a: 1}[b] == 1

    def test_defaults_use_canonical_instructions(self):
        spec = CellSpec.parsec("canneal", "No-PG")
        assert spec.instructions == CANONICAL_INSTRUCTIONS

    def test_canonical_json_stable_under_kwarg_order(self):
        kw1 = freeze_items({"wakeup_latency": 8, "punch_hops": 3})
        kw2 = freeze_items({"punch_hops": 3, "wakeup_latency": 8})
        a = CellSpec.parsec("canneal", "PowerPunch-PG")
        a = CellSpec(**{**a.__dict__, "scheme_kwargs": kw1})
        b = CellSpec(**{**a.__dict__, "scheme_kwargs": kw2})
        assert a.canonical_json() == b.canonical_json()

    def test_canonical_json_distinguishes_specs(self):
        a = CellSpec.parsec("canneal", "No-PG", seed=1)
        b = CellSpec.parsec("canneal", "No-PG", seed=2)
        assert a.canonical_json() != b.canonical_json()

    def test_config_round_trips_through_items(self):
        cfg = NoCConfig(width=4, height=4, router_stages=4)
        spec = CellSpec.synthetic("uniform_random", 0.01, "No-PG", config=cfg)
        assert spec.build_config() == cfg
        assert NoCConfig.from_items(cfg.to_items()) == cfg

    def test_default_config_items_empty(self):
        assert NoCConfig().to_items() == ()

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            CellSpec(kind="mystery", workload="w")


class TestPayloadCodec:
    def test_run_record_round_trip(self):
        rec = make_record()
        decoded = decode_payload(encode_payload(rec))
        assert decoded == rec
        assert decoded.net_static_energy == pytest.approx(1.25)
        assert decoded.total_energy == pytest.approx(1.45)

    def test_mapping_round_trip(self):
        payload = {"latency": 31.5, "wake_events": 7}
        assert decode_payload(encode_payload(payload)) == payload


class TestCellCache:
    def spec(self):
        return CellSpec.parsec("canneal", "No-PG", instructions=300)

    def test_miss_then_hit(self, tmp_path):
        cache = CellCache(str(tmp_path), salt="s1")
        spec = self.spec()
        assert cache.get(spec) is None
        cache.put(spec, make_record())
        assert cache.get(spec) == make_record()

    def test_stale_salt_is_a_miss(self, tmp_path):
        spec = self.spec()
        CellCache(str(tmp_path), salt="s1").put(spec, make_record())
        assert CellCache(str(tmp_path), salt="s2").get(spec) is None
        # The old entry is untouched, just unreachable under the new salt.
        assert CellCache(str(tmp_path), salt="s1").get(spec) == make_record()

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = CellCache(str(tmp_path), salt="s1")
        spec = self.spec()
        cache.put(spec, make_record())
        path = cache.path_for(spec)
        path.write_text("{ corrupt")
        assert cache.get(spec) is None

    def test_distinct_specs_distinct_keys(self, tmp_path):
        cache = CellCache(str(tmp_path), salt="s1")
        a = CellSpec.parsec("canneal", "No-PG")
        b = CellSpec.parsec("canneal", "ConvOpt-PG")
        assert cache.key_for(a) != cache.key_for(b)

    def test_concurrent_writers_same_key_never_corrupt(self, tmp_path):
        """Two processes hammering put() on the same entry: a reader
        polling throughout must only ever observe a complete entry
        (atomic rename with per-key temp names), and no temp files may
        be left behind."""
        import multiprocessing

        root = str(tmp_path)
        spec = self.spec()
        cache = CellCache(root, salt="s1")
        cache.put(spec, make_record())
        writers = [
            multiprocessing.Process(target=_hammer_cache_put, args=(root, 40))
            for _ in range(2)
        ]
        for proc in writers:
            proc.start()
        try:
            while any(proc.is_alive() for proc in writers):
                assert cache.get(spec) == make_record()
        finally:
            for proc in writers:
                proc.join()
        assert [proc.exitcode for proc in writers] == [0, 0]
        assert cache.get(spec) == make_record()
        from pathlib import Path

        assert not list(Path(root).rglob("*.tmp"))


def _hammer_cache_put(root, iterations):
    """Worker for the concurrent-writer stress test (module-level so it
    pickles under any multiprocessing start method)."""
    cache = CellCache(root, salt="s1")
    spec = CellSpec.parsec("canneal", "No-PG", instructions=300)
    for _ in range(iterations):
        cache.put(spec, make_record())


class TestExecuteCells:
    def cells(self):
        return [
            CellSpec.synthetic(
                "uniform_random", 0.01, scheme, warmup=100, measurement=300
            )
            for scheme in ("No-PG", "PowerPunch-PG")
        ]

    def test_results_in_declared_order(self):
        payloads, stats = execute_cells(self.cells())
        assert [p.scheme for p in payloads] == ["No-PG", "PowerPunch-PG"]
        assert stats.total == 2 and stats.executed == 2 and stats.hits == 0

    def test_parallel_matches_sequential(self):
        seq, _ = execute_cells(self.cells())
        par, _ = execute_cells(self.cells(), workers=2)
        assert par == seq

    def test_cache_hits_on_second_run(self, tmp_path):
        cache = CellCache(str(tmp_path), salt="s1")
        cells = self.cells()
        _, cold = execute_cells(cells, cache=cache)
        warm_payloads, warm = execute_cells(cells, cache=cache)
        assert cold.executed == 2 and cold.hits == 0
        assert warm.executed == 0 and warm.hits == 2
        assert [p.scheme for p in warm_payloads] == ["No-PG", "PowerPunch-PG"]

    def test_no_resume_recomputes(self, tmp_path):
        cache = CellCache(str(tmp_path), salt="s1")
        cells = self.cells()
        execute_cells(cells, cache=cache)
        _, stats = execute_cells(cells, cache=cache, resume=False)
        assert stats.executed == 2 and stats.hits == 0

    def test_event_log_written(self, tmp_path):
        log = tmp_path / "events.jsonl"
        execute_cells(self.cells(), log_path=str(log), name="unit")
        events = [json.loads(line) for line in log.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "campaign-start"
        assert kinds[-1] == "campaign-end"
        statuses = [e["status"] for e in events if e["event"] == "cell"]
        assert statuses.count("done") == 2
        assert events[0]["name"] == "unit"
        assert events[-1]["executed"] == 2
        assert all("ts" in e for e in events)


class TestEventLog:
    def test_seq_monotonic_and_host_stamped(self, tmp_path):
        path = tmp_path / "host.events.jsonl"
        log = EventLog(path, host="w0")
        for i in range(3):
            log.emit({"event": "tick", "i": i})
        log.close()
        events = list(iter_events(path))
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert all(e["host"] == "w0" for e in events)
        assert all("ts" in e for e in events)
        # Reopening appends; seq restarts per EventLog instance by
        # design (merge order ties break on ts first, then host/seq).
        log2 = EventLog(path, host="w0")
        log2.emit({"event": "tock"})
        log2.close()
        assert len(list(iter_events(path))) == 4

    def test_iter_events_skips_torn_trailing_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit({"event": "a"})
        log.emit({"event": "b"})
        log.close()
        with open(path, "a") as fh:
            fh.write('{"event": "c", "status"')  # torn write, no newline
        assert [e["event"] for e in iter_events(path)] == ["a", "b"]
        # Missing file degrades to an empty stream, not an error.
        assert list(iter_events(tmp_path / "missing.jsonl")) == []

    def test_merge_event_streams_orders_by_ts_host_seq(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text(
            json.dumps({"ts": 2.0, "seq": 0, "host": "a", "event": "late"})
            + "\n"
            + json.dumps({"ts": 1.0, "seq": 1, "host": "a", "event": "early"})
            + "\n"
        )
        b.write_text(
            json.dumps({"ts": 1.0, "seq": 0, "host": "b", "event": "tie"})
            + "\n"
        )
        merged = merge_event_streams([a, b])
        assert [e["event"] for e in merged] == ["early", "tie", "late"]
        # Deterministic regardless of the order the paths are given in.
        assert merge_event_streams([b, a]) == merged


class TestRetry:
    def test_retries_simulation_error(self, monkeypatch):
        spec = CellSpec.parsec("canneal", "No-PG", instructions=100)
        calls = []

        def flaky(s):
            calls.append(s)
            if len(calls) == 1:
                raise SimulationError("transient")
            return make_record()

        monkeypatch.setattr("repro.campaign.engine.run_cell", flaky)
        payload, attempts = _attempt_cell(spec, retries=1)
        assert payload == make_record()
        assert attempts == 2

    def test_exhausted_retries_raise_campaign_error(self, monkeypatch):
        spec = CellSpec.parsec("canneal", "No-PG", instructions=100)

        def always_fails(s):
            raise SimulationError("persistent")

        monkeypatch.setattr("repro.campaign.engine.run_cell", always_fails)
        with pytest.raises(CampaignError) as exc:
            execute_cells([spec], retries=1)
        assert exc.value.spec == spec
        assert exc.value.attempts == 2

    def test_non_simulation_errors_not_retried(self, monkeypatch):
        spec = CellSpec.parsec("canneal", "No-PG", instructions=100)
        calls = []

        def boom(s):
            calls.append(s)
            raise RuntimeError("bug")

        monkeypatch.setattr("repro.campaign.engine.run_cell", boom)
        with pytest.raises(CampaignError):
            execute_cells([spec], retries=3)
        assert len(calls) == 1


class TestCampaign:
    def test_reducer_applied_and_stats_recorded(self, tmp_path):
        cells = (
            CellSpec.synthetic(
                "uniform_random", 0.01, "No-PG", warmup=100, measurement=300
            ),
        )
        campaign = Campaign(
            name="unit", cells=cells, reducer=lambda p: p[0].avg_packet_latency
        )
        latency = campaign.run(cache_dir=str(tmp_path))
        assert latency > 0
        assert campaign.last_stats.total == 1
        # Default event log lands next to the cache.
        assert list(tmp_path.glob("*.events.jsonl"))


class TestRunCell:
    def test_metrics_cell_payload_keys(self):
        spec = CellSpec.synthetic(
            "uniform_random",
            0.01,
            "PowerPunch-PG",
            warmup=100,
            measurement=300,
            drain=False,
            metrics=True,
        )
        payload = run_cell(spec)
        assert set(payload) >= {
            "latency",
            "wait",
            "off_fraction",
            "wake_events",
            "net_static",
        }

    def test_scheme_attrs_applied(self):
        from repro.campaign import build_scheme

        spec = CellSpec.synthetic(
            "uniform_random",
            0.01,
            "PowerPunch-PG",
            metrics=True,
        )
        spec = CellSpec(
            **{**spec.__dict__, "scheme_attrs": freeze_items({"slack2": False})}
        )
        scheme = build_scheme(spec)
        assert scheme.slack2 is False

    def test_unknown_scheme_attr_raises(self):
        from repro.campaign import build_scheme

        spec = CellSpec.synthetic("uniform_random", 0.01, "PowerPunch-PG")
        spec = CellSpec(
            **{**spec.__dict__, "scheme_attrs": freeze_items({"bogus_knob": 1})}
        )
        with pytest.raises(TypeError):
            build_scheme(spec)


class TestSharedArgparser:
    def test_engine_flags_present(self):
        parser = campaign_argparser("desc")
        args = parser.parse_args(
            [
                "--workers", "3", "--cache-dir", "/tmp/c", "--no-resume",
                "--timeout", "12.5", "--max-retries", "4",
                "--quarantine-dir", "/tmp/q", "--hosts", "local:3",
            ]
        )
        assert engine_options(args) == {
            "workers": 3,
            "cache_dir": "/tmp/c",
            "resume": False,
            "timeout": 12.5,
            "max_retries": 4,
            "quarantine_dir": "/tmp/q",
            "hosts": "local:3",
        }

    def test_defaults(self):
        args = campaign_argparser("desc").parse_args([])
        assert engine_options(args) == {
            "workers": 1,
            "cache_dir": None,
            "resume": True,
            "timeout": None,
            "max_retries": 2,
            "quarantine_dir": None,
            "hosts": None,
        }

    def test_suite_cache_and_instructions_variants(self):
        parser = campaign_argparser("desc", suite_cache=True, instructions=True)
        args = parser.parse_args(["--cache", "suite.json"])
        assert args.cache == "suite.json"
        assert args.instructions == CANONICAL_INSTRUCTIONS
