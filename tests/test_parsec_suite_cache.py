"""Tests for the shared PARSEC-sweep runner and its JSON cache."""

import json


from repro.experiments.parsec_suite import run_suite, suite_records


class TestRunSuite:
    def test_small_suite_runs(self):
        records = run_suite(
            benchmarks=["swaptions"],
            schemes=["No-PG", "PowerPunch-PG"],
            instructions=200,
            verbose=False,
        )
        assert len(records) == 2
        assert {r.scheme for r in records} == {"No-PG", "PowerPunch-PG"}
        assert all(r.workload == "swaptions" for r in records)

    def test_records_ordered_by_benchmark_then_scheme(self):
        records = run_suite(
            benchmarks=["swaptions", "blackscholes"],
            schemes=["No-PG"],
            instructions=150,
            verbose=False,
        )
        assert [r.workload for r in records] == ["swaptions", "blackscholes"]


class TestSuiteCache:
    def test_cache_round_trip(self, tmp_path):
        path = str(tmp_path / "suite.json")
        first = suite_records(
            path, instructions=150, benchmarks=["swaptions"], verbose=False
        )
        assert (tmp_path / "suite.json").exists()
        second = suite_records(path)
        assert second == first

    def test_corrupt_cache_falls_back_to_running(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text("not json at all")
        records = suite_records(
            str(path), instructions=150, benchmarks=["swaptions"], verbose=False
        )
        assert records
        # The cache was repaired.
        assert json.loads(path.read_text())

    def test_no_cache_path_runs_fresh(self):
        records = suite_records(
            None, instructions=150, benchmarks=["swaptions"], verbose=False
        )
        assert len(records) == 4  # all four schemes


class TestParallelSuite:
    def test_parallel_matches_sequential(self):
        seq = run_suite(
            benchmarks=["swaptions"],
            schemes=["No-PG", "PowerPunch-PG"],
            instructions=200,
            verbose=False,
        )
        par = run_suite(
            benchmarks=["swaptions"],
            schemes=["No-PG", "PowerPunch-PG"],
            instructions=200,
            verbose=False,
            workers=2,
        )
        assert par == seq
