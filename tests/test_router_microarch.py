"""Router microarchitecture tests: pipeline, arbitration, credits."""


from repro.noc import (
    Direction,
    Network,
    NoCConfig,
    VirtualNetwork,
    control_packet,
    data_packet,
)


def make_net(stages=3, width=4):
    return Network(NoCConfig(width=width, height=width, router_stages=stages))


class TestPipelineTiming:
    def test_head_flit_stage_schedule_3stage(self):
        """BW at t, speculative VA+SA at t+1, departure visible at t+4."""
        net = make_net(stages=3)
        p = control_packet(0, 2, VirtualNetwork.REQUEST, 0)
        net.inject(p)
        # Flit enters router 0 local port at ni_latency + 1 = 4.
        arrivals = {}
        for _ in range(30):
            net.step()
            for rid in (0, 1, 2):
                router = net.routers[rid]
                occ = router.buffered_flits()
                if occ and rid not in arrivals:
                    arrivals[rid] = net.cycle - 1  # buffered at end of prev step
        net.run_until_drained(100)
        # Hop-to-hop spacing equals Trouter + Tlink = 4.
        assert arrivals[1] - arrivals[0] == 4
        assert arrivals[2] - arrivals[1] == 4

    def test_4stage_adds_one_cycle_per_hop(self):
        lat = {}
        for stages in (3, 4):
            net = make_net(stages=stages)
            p = control_packet(0, 3, VirtualNetwork.REQUEST, 0)
            net.inject(p)
            net.run_until_drained(200)
            lat[stages] = p.network_latency
        # 3 hops + ejection pipeline: 4 extra cycles total.
        assert lat[4] - lat[3] == 3 + 1

    def test_back_to_back_flits_pipeline(self):
        """Body flits follow the head with no bubbles at zero load."""
        net = make_net()
        p = data_packet(0, 1, VirtualNetwork.RESPONSE, 0)
        net.inject(p)
        net.run_until_drained(200)
        # 1 hop: head latency = 1 + 4 + 2 = 7; tail trails by at most
        # size-1 plus credit-induced bubbles on a depth-3 VC.
        assert p.network_latency <= 7 + (5 - 1) + 4


class TestVCAllocation:
    def test_two_packets_share_port_via_two_vcs(self):
        # Multi-flit packets hold VC ownership long enough to observe
        # both RESPONSE VCs of router 0's X+ port owned at once.
        net = make_net()
        a = data_packet(0, 2, VirtualNetwork.RESPONSE, 0)
        b = data_packet(0, 2, VirtualNetwork.RESPONSE, 0)
        net.inject(a)
        net.inject(b)
        owners = set()
        for _ in range(40):
            net.step()
            port = net.routers[0].output_ports[Direction.XPOS]
            owners |= {vc for vc, owner in enumerate(port.owner) if owner}
        assert owners == {4, 5}

    def test_vc_ownership_released_on_tail(self):
        net = make_net()
        p = data_packet(0, 1, VirtualNetwork.RESPONSE, 0)
        net.inject(p)
        net.run_until_drained(200)
        for router in net.routers:
            for port in router.output_ports.values():
                assert port.all_vcs_idle()

    def test_vnet_isolation(self):
        """A REQUEST packet can never grab a RESPONSE VC."""
        net = make_net()
        p = control_packet(0, 3, VirtualNetwork.REQUEST, 0)
        net.inject(p)
        for _ in range(30):
            net.step()
            for router in net.routers:
                for port in router.output_ports.values():
                    for vc in (4, 5):  # RESPONSE VCs
                        assert port.owner[vc] is None


class TestCredits:
    def test_credits_restored_after_drain(self):
        net = make_net()
        for _ in range(8):
            net.inject(data_packet(0, 15, VirtualNetwork.RESPONSE, net.cycle))
        net.run_until_drained(20_000)
        depths = net.config.depths_by_vc()
        for router in net.routers:
            for port in router.output_ports.values():
                for vc, credits in enumerate(port.credits):
                    assert credits == depths[vc], (router.router_id, port.direction)

    def test_ni_credits_restored(self):
        net = make_net()
        net.inject(data_packet(3, 9, VirtualNetwork.RESPONSE, 0))
        net.run_until_drained(20_000)
        depths = net.config.depths_by_vc()
        for ni in net.interfaces:
            for vc, credits in enumerate(ni.credits):
                assert credits == depths[vc]

    def test_buffer_never_overflows_under_load(self):
        import random

        rng = random.Random(2)
        net = make_net()
        # Push hard; VirtualChannel.push raises on overflow.
        for _ in range(800):
            for node in range(16):
                if rng.random() < 0.3:
                    dst = rng.randrange(16)
                    if dst != node:
                        net.inject(
                            data_packet(node, dst, VirtualNetwork.RESPONSE, net.cycle)
                        )
            net.step()
        net.run_until_drained(100_000)


class TestArbitrationFairness:
    def test_round_robin_interleaves_inputs(self):
        """Two flows converging on one output both make progress."""
        net = make_net()
        flows = {1: [], 4: []}
        net.add_delivery_listener(lambda p, c: flows[p.source].append(c))
        for _ in range(10):
            net.inject(control_packet(1, 7, VirtualNetwork.REQUEST, net.cycle))
            net.inject(control_packet(4, 7, VirtualNetwork.REQUEST, net.cycle))
        net.run_until_drained(20_000)
        assert len(flows[1]) == len(flows[4]) == 10
        # Neither flow finishes wholly before the other starts.
        assert min(flows[4]) < max(flows[1])
        assert min(flows[1]) < max(flows[4])

    def test_link_counts_recorded(self):
        net = make_net()
        net.inject(control_packet(0, 3, VirtualNetwork.REQUEST, 0))
        net.run_until_drained(200)
        assert net.link_counts[0][Direction.XPOS] == 1
        assert net.link_counts[3][Direction.LOCAL] == 1
