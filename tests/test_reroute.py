"""Tests for deadlock-free fault-tolerant rerouting and wakeup retry.

``degradation="reroute"`` swaps the network's routing function for
:class:`~repro.noc.routing.FaultTolerantRouting` — an up*/down*
derivative whose channel-dependency graph is provably acyclic for any
dead set — and, when routers are declared permanently dead, purges
only the packets rerouting cannot save, recomputes every surviving
head flit's route, and keeps the rest of the traffic flowing on
detours.  The PG controllers independently gain a retry/backoff
protocol for wakeup requests lost to ``wakeup_fail`` faults.
"""

import random

import pytest

from repro.core import NoPG, PowerPunchPG
from repro.noc import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultTolerantRouting,
    InvariantChecker,
    MeshTopology,
    Network,
    NoCConfig,
    SimulationError,
    VirtualNetwork,
    XYRouting,
    control_packet,
)
from repro.noc.packet import reset_packet_ids
from repro.powergate.controller import PGState, PowerGateController
from repro.traffic import SyntheticTraffic

#: Router 5 sits mid-mesh on the 4->6 XY route of a 4x4 mesh.
DEAD = 5


def build(
    *,
    kernel="active",
    threshold=50,
    scheme=None,
    dead=DEAD,
    start=0,
    width=4,
    height=4,
):
    config = NoCConfig(
        width=width,
        height=height,
        kernel=kernel,
        degradation="reroute",
        dead_router_threshold=threshold,
    )
    net = Network(config, scheme if scheme is not None else NoPG())
    routers = dead if isinstance(dead, (list, tuple, set)) else [dead]
    net.install_faults(
        FaultInjector(
            FaultSchedule(
                [
                    FaultSpec(kind="router_stall", router=rid, start=start)
                    for rid in sorted(routers)
                ]
            )
        )
    )
    return net


class TestXYRoutingCaches:
    def test_caches_are_injectable_and_clearable(self):
        topo = MeshTopology(4, 4)
        directions, hops = {}, {}
        rt = XYRouting(topo, direction_cache=directions, next_hop_cache=hops)
        assert rt.next_hop(4, 6) == 5
        assert (4, 6) in hops and (4, 6) in directions
        rt.clear_caches()
        assert not hops and not directions

    def test_static_view_is_self(self):
        rt = XYRouting(MeshTopology(4, 4))
        assert rt.static_view is rt

    def test_path_walk_is_bounded(self):
        class Loopy(XYRouting):
            def output_direction(self, current, destination):
                # A (buggy) routing function that never converges.
                from repro.noc.topology import Direction

                return Direction.XPOS if current % 4 < 3 else Direction.XNEG

        with pytest.raises(SimulationError):
            Loopy(MeshTopology(4, 4)).path(0, 15)


class TestFaultTolerantRouting:
    @pytest.mark.parametrize("dead", range(16))
    def test_single_dead_placement_is_deadlock_free_and_complete(self, dead):
        """For EVERY single-router fault on a 4x4 mesh: the channel
        dependency graph stays acyclic and every live pair remains
        mutually reachable on a dead-free path."""
        rt = FaultTolerantRouting(MeshTopology(4, 4))
        assert rt.set_dead(frozenset({dead}))
        assert rt.verify_deadlock_free() > 0
        live = [n for n in range(16) if n != dead]
        for s in live:
            for d in live:
                assert rt.reachable(s, d)
                if s != d:
                    path = rt.path(s, d)
                    assert dead not in path
                    assert path[0] == s and path[-1] == d

    def test_region_fault_stays_acyclic(self):
        rt = FaultTolerantRouting(MeshTopology(4, 4))
        rt.set_dead(frozenset({5, 6, 9}))
        rt.verify_deadlock_free()
        live = [n for n in range(16) if n not in (5, 6, 9)]
        for s in live:
            for d in live:
                assert rt.reachable(s, d)

    def test_disconnected_node_is_reported_unreachable(self):
        # Killing 1 and 4 cuts corner node 0 off a 4x4 mesh.
        rt = FaultTolerantRouting(MeshTopology(4, 4))
        rt.set_dead(frozenset({1, 4}))
        rt.verify_deadlock_free()
        assert not rt.reachable(0, 15)
        assert not rt.reachable(15, 0)
        assert rt.reachable(2, 15)
        with pytest.raises(SimulationError):
            rt.output_direction(15, 0)

    def test_set_dead_is_a_noop_for_same_set(self):
        rt = FaultTolerantRouting(MeshTopology(4, 4))
        assert rt.set_dead(frozenset({5}))
        assert not rt.set_dead(frozenset({5}))
        assert rt.set_dead(frozenset())

    def test_static_view_stays_pure_xy(self):
        rt = FaultTolerantRouting(MeshTopology(4, 4))
        rt.set_dead(frozenset({5}))
        assert rt.next_hop(4, 6) != 5
        assert rt.static_view.next_hop(4, 6) == 5  # XY twin unaffected

    def test_empty_dead_set_is_plain_xy(self):
        topo = MeshTopology(4, 4)
        ft = FaultTolerantRouting(topo)
        xy = XYRouting(topo)
        for s in range(16):
            for d in range(16):
                assert ft.output_direction(s, d) == xy.output_direction(s, d)


class TestStaleRouteRegression:
    def test_routes_recompute_after_mid_run_death(self):
        """Kill a router mid-run after its routes are cached: the
        caches must be invalidated, not served stale."""
        net = build(threshold=50, start=100)
        # Populate the (4, 6) route through router 5 in the caches.
        assert net.routing.next_hop(4, 6) == DEAD
        p = control_packet(4, 6, VirtualNetwork.REQUEST, 0)
        net.inject(p)
        net.run(50)
        assert p.delivered_at is not None  # delivered before the death
        net.run(110)  # stall opens at 100, threshold 50
        assert net.dead_routers == {DEAD}
        assert net.routing.next_hop(4, 6) != DEAD
        late = control_packet(4, 6, VirtualNetwork.REQUEST, net.cycle)
        net.inject(late)
        net.run_until_drained(5000)
        assert late.delivered_at is not None
        assert DEAD not in late.blocked_routers
        assert late.hops_taken > 2  # took a detour, not the XY route


class TestRerouteDegradation:
    @pytest.mark.parametrize("kernel", ["active", "naive"])
    def test_traffic_keeps_flowing_with_invariants_green(self, kernel):
        net = build(kernel=kernel, threshold=60)
        checker = InvariantChecker(strict=True, max_network_age=50_000)
        net.install_invariants(checker)
        traffic = SyntheticTraffic(net, "uniform_random", 0.05, seed=3)
        traffic.run(600)
        assert net.dead_routers == {DEAD}
        traffic.drain()
        stats = net.stats
        assert stats.rerouted_packets > 0
        assert stats.detour_hops >= stats.rerouted_packets
        # Everything injected was either delivered or purged with
        # accounting at the moment of death.
        assert stats.delivered == stats.injected_packets - (
            stats.dropped_packets - stats.refused_packets
        )
        assert checker.checks_run > 0

    def test_reroute_is_kernel_exact(self):
        dumps = []
        for kernel in ("active", "naive"):
            reset_packet_ids()
            net = build(kernel=kernel, threshold=60, scheme=PowerPunchPG())
            traffic = SyntheticTraffic(net, "uniform_random", 0.05, seed=3)
            traffic.run(600)
            traffic.drain()
            dumps.append((net.cycle, net.stats.as_dict()))
        assert dumps[0] == dumps[1]

    def test_unreachable_destination_is_refused_not_hung(self):
        """A node disconnected by the fault becomes an accounted
        refusal at the NI door — never a silent hang."""
        net = build(dead=[1, 4], threshold=40)
        net.install_invariants(InvariantChecker(strict=True, max_network_age=50_000))
        net.run(50)
        assert net.dead_routers == {1, 4}
        stranded = control_packet(0, 15, VirtualNetwork.REQUEST, net.cycle)
        toward = control_packet(15, 0, VirtualNetwork.REQUEST, net.cycle)
        live = control_packet(2, 15, VirtualNetwork.REQUEST, net.cycle)
        for p in (stranded, toward, live):
            net.inject(p)
        assert net.stats.refused_packets == 2
        net.run_until_drained(5000)
        assert live.delivered_at is not None
        assert stranded.delivered_at is None and toward.delivered_at is None

    def test_acceptance_8x8_one_dead_router_99pct_delivery(self):
        """Acceptance gate: 8x8 uniform random at 0.02 flits/node/cycle
        with one mid-mesh router dying mid-run — at least 99% of the
        packets injected into the mesh are delivered, under the strict
        checker and deadlock watchdog."""
        net = build(width=8, height=8, dead=27, start=500, threshold=100)
        checker = InvariantChecker(strict=True, max_network_age=50_000)
        net.install_invariants(checker)
        traffic = SyntheticTraffic(net, "uniform_random", 0.02, seed=11)
        traffic.run(4000)
        assert net.dead_routers == {27}
        traffic.drain()
        stats = net.stats
        assert stats.injected_packets > 1000
        assert stats.delivered >= 0.99 * stats.injected_packets
        assert stats.rerouted_packets > 0
        assert checker.checks_run > 0

    def test_fail_fast_error_carries_fault_context(self):
        config = NoCConfig(
            width=4, height=4, degradation="fail_fast", dead_router_threshold=50
        )
        net = Network(config, NoPG())
        net.install_faults(
            FaultInjector(
                FaultSchedule(
                    [FaultSpec(kind="router_stall", router=DEAD, start=0)]
                )
            )
        )
        from repro.noc import DegradedNetworkError

        with pytest.raises(DegradedNetworkError) as excinfo:
            net.run(200)
        err = excinfo.value
        assert "router_stall" in err.fault_spec
        assert err.dead_routers == (DEAD,)


class TestWakeupRetry:
    def _make(self, spec):
        controller = PowerGateController(0, wakeup_latency=4, timeout=2)
        controller.faults = FaultInjector(FaultSchedule.parse(spec))
        return controller

    def _sleep(self, controller):
        cycle = 0
        while controller.state is not PGState.OFF:
            controller.step(cycle, True, False)
            cycle += 1
        return cycle

    def test_lost_wakeup_is_retried_with_backoff(self):
        controller = self._make("wakeup_fail,rate=1.0,start=0,end=100;seed=5")
        cycle = self._sleep(controller)
        controller.request_wakeup(cycle, 0)
        assert controller.state is PGState.OFF  # swallowed by the fault
        assert controller.retry_at == cycle + controller.retry_timeout
        deadlines = []
        while cycle <= 120:
            before = controller.retry_at
            controller.step(cycle, True, False)
            if controller.state is not PGState.OFF:
                break
            if controller.retry_at != before:
                deadlines.append(controller.retry_at - cycle)
            cycle += 1
        # The re-issue deadline doubled (capped) while the fault window
        # was open, then a retry finally got through and woke the router.
        assert deadlines
        assert all(b <= controller.retry_cap for b in deadlines)
        assert sorted(deadlines) == deadlines
        assert controller.state in (PGState.WAKING, PGState.ACTIVE)
        assert controller.wakeup_retries == len(deadlines) + 1

    def test_delivered_request_clears_pending_retry(self):
        controller = self._make("wakeup_fail,rate=1.0,start=0,end=10;seed=5")
        cycle = self._sleep(controller)
        controller.request_wakeup(cycle, 0)
        assert controller.retry_at is not None
        # A later organic request (after the fault window) gets through
        # and supersedes the pending retry.
        controller.request_wakeup(50, 0)
        assert controller.state is PGState.WAKING
        assert controller.retry_at is None and controller.retry_backoff == 0

    def test_delay_fault_does_not_arm_retry(self):
        controller = self._make("wakeup_delay,rate=1.0,delay=6;seed=5")
        cycle = self._sleep(controller)
        controller.request_wakeup(cycle, 0)
        # Delayed but delivered: the router wakes late, no retry needed.
        assert controller.state is PGState.WAKING
        assert controller.retry_at is None

    def test_retry_mirrors_into_network_stats(self):
        from repro.noc import NetworkStats

        stats = NetworkStats()
        controller = self._make("wakeup_fail,rate=1.0,start=0,end=100;seed=5")
        controller.stats = stats
        cycle = self._sleep(controller)
        controller.request_wakeup(cycle, 0)
        for c in range(cycle, cycle + 2 * controller.retry_timeout):
            controller.step(c, True, False)
        assert controller.wakeup_retries > 0
        assert stats.wakeup_retries == controller.wakeup_retries

    @pytest.mark.parametrize("kernel", ["active", "naive"])
    def test_retries_unwedge_gated_network(self, kernel):
        """End to end: a total wakeup_fail window would leave OFF
        routers dark forever without retries; with them the network
        drains and the counters land in NetworkStats."""
        reset_packet_ids()
        config = NoCConfig(width=4, height=4, kernel=kernel)
        net = Network(config, PowerPunchPG(wakeup_latency=8, timeout=4))
        net.install_faults(
            FaultInjector(
                FaultSchedule.parse("wakeup_fail,rate=1.0,start=0,end=300;seed=9")
            )
        )
        rng = random.Random(3)
        for cyc in range(600):
            if cyc < 400 and rng.random() < 0.1:
                s = rng.randrange(16)
                d = rng.randrange(16)
                while d == s:
                    d = rng.randrange(16)
                net.inject(control_packet(s, d, VirtualNetwork.REQUEST, net.cycle))
            net.step()
        net.run_until_drained(50_000)
        assert net.stats.wakeup_retries > 0
        assert net.stats.delivered == net.stats.injected_packets

    def test_retry_is_kernel_exact(self):
        dumps = []
        for kernel in ("active", "naive"):
            reset_packet_ids()
            config = NoCConfig(width=4, height=4, kernel=kernel)
            net = Network(config, PowerPunchPG(wakeup_latency=8, timeout=4))
            net.install_faults(
                FaultInjector(
                    FaultSchedule.parse(
                        "wakeup_fail,rate=1.0,start=0,end=400;seed=13"
                    )
                )
            )
            traffic = SyntheticTraffic(net, "uniform_random", 0.03, seed=5)
            traffic.run(700)
            traffic.drain()
            dumps.append((net.cycle, net.stats.as_dict()))
        assert dumps[0] == dumps[1]
        assert dumps[0][1]["wakeup_retries"] > 0
