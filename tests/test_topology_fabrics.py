"""Torus and ring fabrics: geometry, dateline routing, delivery.

The topology layer's acceptance criteria in one file:

* :class:`Torus2D` / :class:`Ring` geometry — wrap neighbors, minimal
  hop distance, diameter, port model, construction limits;
* :class:`TorusRouting` / :class:`RingRouting` — minimal direction
  choice, dateline VC classes, and an explicit acyclicity proof of the
  realized channel-dependency graph;
* config plumbing — typed construction-time validation, ``to_items``
  round-trips, cache-key stability for mesh configs;
* end-to-end delivery — a hypothesis property that torus and ring
  deliver every packet deadlock-free at low load across random seeds,
  and kernel-equivalence fingerprints (naive vs active vs vector) on
  the wrapped fabrics.
"""

import argparse
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import parse_fabric
from repro.campaign import require_mesh_topology
from repro.core import ConvOptPG, NoPG, PowerPunchPG
from repro.noc import (
    ConfigError,
    Direction,
    InvariantChecker,
    InvariantViolation,
    Mesh2D,
    Network,
    NoCConfig,
    PostMortem,
    Ring,
    RingRouting,
    Torus2D,
    TorusRouting,
    UnsupportedTopologyError,
    XYRouting,
    default_routing,
    make_topology,
)
from repro.traffic import SyntheticTraffic, measure
from repro.traffic.patterns import transpose


class TestTorusGeometry:
    def test_wrap_neighbors(self):
        topo = Torus2D(4, 4)
        # Row 0 wraps in X, column 0 wraps in Y.
        assert topo.neighbor(0, Direction.XNEG) == 3
        assert topo.neighbor(3, Direction.XPOS) == 0
        assert topo.neighbor(0, Direction.YNEG) == 12
        assert topo.neighbor(12, Direction.YPOS) == 0
        # Interior neighbors match the mesh.
        assert topo.neighbor(5, Direction.XPOS) == 6
        assert topo.neighbor(5, Direction.YPOS) == 9

    def test_every_router_has_four_neighbors(self):
        topo = Torus2D(4, 3)
        for node in range(topo.num_nodes):
            assert len(list(topo.neighbors(node))) == 4
        # ...so the directed link count is exactly 4N (vs the mesh's
        # edge-trimmed 2(w-1)h + 2w(h-1)).
        assert len(list(topo.links())) == 4 * topo.num_nodes

    def test_hop_distance_takes_shorter_way_around(self):
        topo = Torus2D(8, 8)
        # Mesh corner-to-corner is 14; the torus wraps both dimensions.
        assert topo.hop_distance(0, 63) == 2
        assert topo.hop_distance(0, 7) == 1
        assert topo.hop_distance(0, 4) == 4  # antipodal: no shortcut
        assert Mesh2D(8, 8).hop_distance(0, 63) == 14

    def test_diameter_is_half_way_around_both_rings(self):
        assert Torus2D(8, 8).diameter == 8
        assert Torus2D(5, 3).diameter == 3
        assert Mesh2D(8, 8).diameter == 14

    def test_port_model_matches_mesh(self):
        assert Torus2D(3, 3).ports == Mesh2D(3, 3).ports
        assert Torus2D(3, 3).num_ports == 5

    def test_too_small_torus_rejected(self):
        # 2-wide rings make XPOS/XNEG neighbors coincide.
        with pytest.raises(ValueError):
            Torus2D(2, 4)
        with pytest.raises(ValueError):
            Torus2D(4, 2)

    def test_spec_string(self):
        assert Torus2D(5, 3).spec == "torus:5x3"
        assert Mesh2D(8, 8).spec == "mesh:8x8"


class TestRingGeometry:
    def test_cycle_neighbors(self):
        topo = Ring(8)
        assert topo.neighbor(0, Direction.XPOS) == 1
        assert topo.neighbor(7, Direction.XPOS) == 0
        assert topo.neighbor(0, Direction.XNEG) == 7
        assert topo.neighbor(0, Direction.YPOS) is None
        assert topo.neighbor(0, Direction.LOCAL) == 0

    def test_three_ports(self):
        topo = Ring(8)
        assert topo.num_ports == 3
        assert topo.ports == (Direction.LOCAL, Direction.XPOS, Direction.XNEG)
        for node in range(8):
            assert len(list(topo.neighbors(node))) == 2

    def test_hop_distance_and_diameter(self):
        topo = Ring(9)
        assert topo.hop_distance(0, 1) == 1
        assert topo.hop_distance(0, 8) == 1
        assert topo.hop_distance(0, 4) == 4
        assert topo.hop_distance(0, 5) == 4  # wraps
        assert topo.diameter == 4
        assert Ring(8).diameter == 4

    def test_rendered_as_single_row(self):
        topo = Ring(6)
        assert topo.shape == (6, 1)
        assert topo.coord(4).y == 0
        assert topo.spec == "ring:6x1"

    def test_too_small_ring_rejected(self):
        with pytest.raises(ValueError):
            Ring(2)


class TestMakeTopology:
    def test_registry(self):
        assert isinstance(make_topology("mesh", 4, 4), Mesh2D)
        assert isinstance(make_topology("torus", 4, 4), Torus2D)
        assert isinstance(make_topology("ring", 4, 4), Ring)

    def test_ring_takes_node_count_from_area(self):
        # An 8x8 config yields a 64-node ring: configs stay comparable
        # across topologies at equal node counts.
        topo = make_topology("ring", 8, 8)
        assert topo.num_nodes == 64

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("hypercube", 4, 4)


class TestDatelineRouting:
    def test_default_routing_per_topology(self):
        assert isinstance(default_routing(Mesh2D(4, 4)), XYRouting)
        assert isinstance(default_routing(Torus2D(4, 4)), TorusRouting)
        assert isinstance(default_routing(Ring(8)), RingRouting)

    def test_torus_takes_shorter_way(self):
        routing = TorusRouting(Torus2D(8, 8))
        assert routing.output_direction(0, 7) == Direction.XNEG  # wrap
        assert routing.output_direction(0, 3) == Direction.XPOS
        assert routing.output_direction(0, 56) == Direction.YNEG  # wrap
        assert routing.output_direction(0, 0) == Direction.LOCAL
        # X resolves strictly before Y, as on the mesh.
        assert routing.output_direction(0, 63) == Direction.XNEG

    def test_ring_takes_shorter_way(self):
        routing = RingRouting(Ring(8))
        assert routing.output_direction(0, 3) == Direction.XPOS
        assert routing.output_direction(0, 5) == Direction.XNEG
        # Ties break clockwise.
        assert routing.output_direction(0, 4) == Direction.XPOS

    def test_torus_dateline_classes(self):
        routing = TorusRouting(Torus2D(8, 8))
        vcs = list(range(4))
        # 6 -> 1 travels X+ through the wrap: the dateline is ahead, so
        # only the class-0 half of the vnet's VCs may be claimed.
        assert routing.vc_choices(6, Direction.XPOS, 1, vcs) == [0, 1]
        # 1 -> 6 travels X- through the same wrap.
        assert routing.vc_choices(1, Direction.XNEG, 6, vcs) == [0, 1]
        # 1 -> 3 never crosses the wrap: class 1.
        assert routing.vc_choices(1, Direction.XPOS, 3, vcs) == [2, 3]
        # Ejection takes part in no ring dependency: unrestricted.
        assert routing.vc_choices(3, Direction.LOCAL, 3, vcs) == vcs

    def test_ring_dateline_classes(self):
        routing = RingRouting(Ring(8))
        vcs = list(range(4))
        assert routing.vc_choices(6, Direction.XPOS, 1, vcs) == [0, 1]
        assert routing.vc_choices(6, Direction.XPOS, 7, vcs) == [2, 3]
        assert routing.vc_choices(1, Direction.XNEG, 6, vcs) == [0, 1]
        assert routing.vc_choices(3, Direction.XNEG, 1, vcs) == [2, 3]

    def test_class_transitions_only_go_forward(self):
        # Along any path, the dateline class per dimension may only
        # move 0 -> 1 (crossing the wrap resets nothing behind it).
        routing = TorusRouting(Torus2D(5, 5))
        topo = routing.topology
        probe = list(range(2))
        for src in range(topo.num_nodes):
            for dst in range(topo.num_nodes):
                if src == dst:
                    continue
                path = routing.path(src, dst)
                last = {"x": -1, "y": -1}
                for node in path[:-1]:
                    d = routing.output_direction(node, dst)
                    cls = routing.vc_choices(node, d, dst, probe)[0]
                    dim = "x" if d.is_x else "y"
                    assert cls >= last[dim]
                    last[dim] = cls

    @pytest.mark.parametrize(
        "routing",
        [
            XYRouting(Mesh2D(4, 4)),
            TorusRouting(Torus2D(4, 4)),
            TorusRouting(Torus2D(5, 3)),
            RingRouting(Ring(8)),
            RingRouting(Ring(9)),
        ],
        ids=lambda r: f"{type(r).__name__}-{r.topology.spec}",
    )
    def test_channel_dependency_graph_is_acyclic(self, routing):
        assert routing.verify_deadlock_free() > 0

    def test_cdg_checker_catches_a_cycle(self):
        # The certification must be a real check, not a rubber stamp:
        # a torus routed without VC restriction has the classic ring
        # dependency cycle.
        class UnrestrictedTorus(TorusRouting):
            restricts_vcs = False

        with pytest.raises(InvariantViolation, match="cdg-acyclic"):
            UnrestrictedTorus(Torus2D(4, 4)).verify_deadlock_free()

    def test_paths_are_minimal_on_wrapped_fabrics(self):
        for routing in (TorusRouting(Torus2D(5, 4)), RingRouting(Ring(11))):
            topo = routing.topology
            for src in range(topo.num_nodes):
                for dst in range(topo.num_nodes):
                    path = routing.path(src, dst)
                    assert len(path) - 1 == topo.hop_distance(src, dst)


class TestConfigPlumbing:
    def test_topology_typo_rejected(self):
        with pytest.raises(ConfigError):
            NoCConfig(topology="taurus")

    def test_reroute_is_mesh_only(self):
        with pytest.raises(UnsupportedTopologyError):
            NoCConfig(width=4, height=4, topology="torus", degradation="reroute")

    def test_wrapped_fabrics_need_two_vcs_per_vnet(self):
        with pytest.raises(UnsupportedTopologyError, match="dateline"):
            NoCConfig(width=4, height=4, topology="torus", vcs_per_vnet=1)
        with pytest.raises(UnsupportedTopologyError):
            NoCConfig(topology="ring", vcs_per_vnet=1)
        # The mesh needs no dateline classes: one VC per vnet is fine.
        NoCConfig(vcs_per_vnet=1)

    def test_bad_shapes_fail_at_config_time(self):
        with pytest.raises(ValueError):
            NoCConfig(width=2, height=4, topology="torus")
        with pytest.raises(ValueError):
            NoCConfig(width=2, height=1, topology="ring")

    def test_round_trip_preserves_topology(self):
        cfg = NoCConfig(width=4, height=4, topology="torus", kernel="naive")
        items = cfg.to_items()
        assert ("topology", "torus") in items
        assert NoCConfig.from_items(items) == cfg

    def test_mesh_cache_keys_unchanged(self):
        # The default topology must not appear in the wire form, so
        # every pre-topology-layer mesh cache entry stays addressable.
        assert "topology" not in dict(NoCConfig().to_items())
        assert "topology" not in dict(NoCConfig(width=4, height=4).to_items())

    def test_punch_schemes_refuse_non_mesh(self):
        with pytest.raises(UnsupportedTopologyError, match="turn restrictions"):
            Network(NoCConfig(width=4, height=4, topology="torus"), PowerPunchPG())

    def test_one_hop_wakeup_runs_on_any_fabric(self):
        net = Network(NoCConfig(width=4, height=4, topology="torus"), ConvOptPG())
        net.step()

    def test_mesh_only_experiments_reject_topology_flag(self):
        args = argparse.Namespace(topology="ring")
        with pytest.raises(SystemExit, match="mesh-only"):
            require_mesh_topology(args, "fig12")
        require_mesh_topology(argparse.Namespace(topology="mesh"), "fig12")

    def test_parse_fabric_specs(self):
        assert parse_fabric("8x8") == ("mesh", 8, 8)
        assert parse_fabric("torus:8x8") == ("torus", 8, 8)
        assert parse_fabric("ring:16") == ("ring", 16, 1)

    def test_transpose_rejects_one_dimensional_fabrics(self):
        rng = random.Random(0)
        with pytest.raises(UnsupportedTopologyError):
            transpose(3, Ring(8), rng)
        assert transpose(11, Torus2D(8, 8), rng) == 25

    def test_post_mortem_renders_coordinates(self):
        assert PostMortem._node(27, (3, 3)) == "R27(3,3)"
        assert PostMortem._node(5, None) == "R5"


def _fingerprint(topology, width, height, scheme_factory, kernel, seed):
    net = Network(
        NoCConfig(width=width, height=height, topology=topology, kernel=kernel),
        scheme_factory(),
    )
    traffic = SyntheticTraffic(net, "uniform_random", 0.03, seed=seed)
    measure(net, traffic, warmup=200, measurement=800)
    return dict(net.stats.as_dict())


class TestWrappedFabricKernels:
    @pytest.mark.parametrize("scheme_factory", [NoPG, ConvOptPG])
    @pytest.mark.parametrize(
        "topology,width,height", [("torus", 4, 4), ("ring", 12, 1)]
    )
    def test_three_kernel_fingerprints_match(
        self, topology, width, height, scheme_factory
    ):
        dumps = [
            _fingerprint(topology, width, height, scheme_factory, kernel, seed=7)
            for kernel in ("naive", "active", "vector")
        ]
        assert dumps[0] == dumps[1] == dumps[2]
        assert dumps[0]["delivered"] > 0

    def test_vector_engine_engages_on_wrapped_fabrics(self):
        # Ungated traffic runs on the SoA engine (snapshot routing
        # tables)...
        net = Network(NoCConfig(width=4, height=4, topology="torus", kernel="vector"))
        net.step()
        assert net._engine is not None
        # ...while gated schemes decline engagement off the mesh and
        # must run bit-identically on the active fallback (asserted by
        # the fingerprint test above).
        net = Network(
            NoCConfig(width=4, height=4, topology="torus", kernel="vector"),
            ConvOptPG(),
        )
        net.step()
        assert net._engine is None


class TestWrappedFabricDelivery:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        fabric=st.sampled_from([("torus", 4, 4), ("torus", 5, 3), ("ring", 9, 1)]),
    )
    def test_low_load_delivers_everything_deadlock_free(self, seed, fabric):
        topology, width, height = fabric
        net = Network(NoCConfig(width=width, height=height, topology=topology))
        net.install_invariants(InvariantChecker(strict=True))
        traffic = SyntheticTraffic(net, "uniform_random", 0.04, seed=seed)
        traffic.run(400)
        traffic.drain(max_cycles=50_000)
        assert net.stats.delivered > 0
        assert net.in_flight_packets() == 0
        assert not net.invariants.violations
