"""Hypothesis-driven coherence stress.

Generates random multi-core access interleavings and checks the
protocol invariants after quiescence: single writer, agreeing shared
copies, write counts fully reflected in the final version, and no
leaked transient state.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import NoPG
from repro.noc import NoCConfig
from repro.system import Chip, StreamProfile

NUM_NODES = 16
BLOCKS = [(1 << 50) + i for i in range(3)]

op = st.tuples(
    st.integers(min_value=0, max_value=NUM_NODES - 1),  # node
    st.integers(min_value=0, max_value=len(BLOCKS) - 1),  # block index
    st.booleans(),  # is_write
    st.integers(min_value=1, max_value=8),  # cycles to advance
)


def build_chip(seed=1):
    chip = Chip(
        NoCConfig(width=4, height=4),
        NoPG(),
        StreamProfile(),
        instructions_per_core=1,
        seed=seed,
        warm_caches=False,
    )
    for core in chip.cores:
        core.done_at = 0
    for l1 in chip.l1s:
        l1.on_complete = lambda b, c: None
    return chip


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=st.lists(op, min_size=5, max_size=60))
def test_random_interleavings_stay_coherent(ops):
    chip = build_chip()
    writes = {b: 0 for b in BLOCKS}
    for node, block_idx, is_write, advance in ops:
        block = BLOCKS[block_idx]
        l1 = chip.l1s[node]
        if l1.can_accept(block) or l1.cache.contains(block):
            l1.access(block, is_write, chip.network.cycle)
            if is_write:
                writes[block] += 1
        for _ in range(advance):
            chip.step()
    for _ in range(4000):
        chip.step()

    for block in BLOCKS:
        holders = [
            n
            for n in range(NUM_NODES)
            if chip.l1s[n].state_of(block) in ("E", "M")
        ]
        assert len(holders) <= 1, (block, holders)
        versions = {
            chip.l1s[n].cache.lookup(block, touch=False).version
            for n in range(NUM_NODES)
            if chip.l1s[n].cache.lookup(block, touch=False) is not None
        }
        assert len(versions) <= 1, (block, versions)
        # Every write that was actually issued bumped the version chain:
        # the maximum observable version equals the number of writes.
        home = chip.directories[chip.home_of(block)]
        l2_line = home.l2.lookup(block, touch=False)
        observable = set()
        if versions:
            observable |= versions
        if l2_line is not None:
            observable.add(l2_line.version)
        observable.add(chip.memory.read(block))
        assert max(observable) == writes[block], (block, observable, writes[block])

    for l1 in chip.l1s:
        assert not l1.mshrs
        assert not l1.wb_buffers
    for directory in chip.directories:
        for block, entry in directory.entries.items():
            assert not entry.busy
            assert not entry.waiting
